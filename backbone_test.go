package evm

import (
	"testing"
	"time"
)

// smallUnit declares a 6-node cell (gateway 1, head 2, loop candidates
// 3/4, spares 5/6) with one synthetic-feed control loop — the minimal
// federation building block for backbone and handshake tests.
func smallUnit(name, prefix string) CellSpec {
	return CellSpec{
		Name:    name,
		Options: []CellOption{WithNodeCount(6), WithSlotsPerNode(3), WithPER(0)},
		VC: VCConfig{
			Name: name, Head: 2, Gateway: 1,
			Tasks: []TaskSpec{{
				ID: prefix + "-loop", SensorPort: 0, ActuatorPort: 10,
				Period: 250 * time.Millisecond, WCET: 5 * time.Millisecond,
				Candidates:   []NodeID{3, 4},
				DeviationTol: 5, DeviationWindow: 4, SilenceWindow: 8,
				MakeLogic: campusPID,
			}},
			DormantAfter: 5 * time.Second,
		},
		Feed: &FeedSpec{Source: 1, Period: 250 * time.Millisecond,
			Sample: func() []SensorReading { return []SensorReading{{Port: 0, Value: 50}} }},
	}
}

// ringCampus builds a 4-cell ring a-b-c-d-a out of smallUnits.
func ringCampus(t *testing.T, cfg CampusConfig) *Campus {
	t.Helper()
	cfg.Links = []BackboneLink{
		{A: "a", B: "b"}, {A: "b", B: "c"}, {A: "c", B: "d"}, {A: "d", B: "a"},
	}
	campus, err := NewCampus(cfg,
		smallUnit("a", "a"), smallUnit("b", "b"), smallUnit("c", "c"), smallUnit("d", "d"))
	if err != nil {
		t.Fatal(err)
	}
	return campus
}

// pathString renders a cell-index route through the campus names.
func pathString(c *Campus, path []int) string {
	s := ""
	for i, idx := range path {
		if i > 0 {
			s += ">"
		}
		s += c.Cells()[idx].Name()
	}
	return s
}

// TestSeveredRingRoutesTheLongWay: severing one ring link forces the
// affected pair onto the three-hop path; restoring it brings the direct
// route back; severing both links of a cell partitions it (no route).
func TestSeveredRingRoutesTheLongWay(t *testing.T) {
	campus := ringCampus(t, CampusConfig{Seed: 1})
	defer campus.Stop()
	bb := campus.Backbone()
	if got := pathString(campus, bb.Route(3, 0)); got != "d>a" {
		t.Fatalf("intact ring route d->a = %s", got)
	}
	if err := bb.SetLinkDown("d", "a"); err != nil {
		t.Fatal(err)
	}
	if !bb.LinkDown("a", "d") {
		t.Fatal("severed link not reported down (order-insensitive)")
	}
	if got := pathString(campus, bb.Route(3, 0)); got != "d>c>b>a" {
		t.Fatalf("severed ring route d->a = %s, want the long way round", got)
	}
	if hops := bb.Hops(3, 0); hops != 3 {
		t.Fatalf("severed ring hops d->a = %d", hops)
	}
	if err := bb.SetLinkUp("d", "a"); err != nil {
		t.Fatal(err)
	}
	if got := pathString(campus, bb.Route(3, 0)); got != "d>a" {
		t.Fatalf("restored ring route d->a = %s", got)
	}
	// Partition c entirely: both its links down -> no route, ever.
	if err := bb.SetLinkDown("b", "c"); err != nil {
		t.Fatal(err)
	}
	if err := bb.SetLinkDown("c", "d"); err != nil {
		t.Fatal(err)
	}
	if r := bb.Route(0, 2); r != nil {
		t.Fatalf("partitioned cell still routable: %v", r)
	}
	if hops := bb.Hops(0, 2); hops != -1 {
		t.Fatalf("partitioned hops = %d, want -1", hops)
	}
}

// TestMeshMaterializesOnSever: severing a link of the implicit full mesh
// materializes the mesh, and the severed pair reroutes through the
// lowest-index surviving peer instead of failing.
func TestMeshMaterializesOnSever(t *testing.T) {
	campus, err := NewCampus(CampusConfig{Seed: 1},
		smallUnit("a", "a"), smallUnit("b", "b"), smallUnit("c", "c"))
	if err != nil {
		t.Fatal(err)
	}
	defer campus.Stop()
	bb := campus.Backbone()
	if !bb.Mesh() {
		t.Fatal("campus without explicit links should start as a mesh")
	}
	if err := bb.SetLinkDown("a", "b"); err != nil {
		t.Fatal(err)
	}
	if bb.Mesh() {
		t.Fatal("sever did not materialize the mesh")
	}
	if got := pathString(campus, bb.Route(0, 1)); got != "a>c>b" {
		t.Fatalf("severed mesh route a->b = %s", got)
	}
	if err := bb.SetLinkUp("a", "b"); err != nil {
		t.Fatal(err)
	}
	if got := pathString(campus, bb.Route(0, 1)); got != "a>b" {
		t.Fatalf("restored mesh route a->b = %s", got)
	}
}

// TestWeightedRoutesAvoidLossyShortcut: routes are priced by expected
// delay (latency / (1 - PER)), so a clean multi-hop detour beats a
// lossy direct link — exactly where weighted routing diverges from
// min-hop. The a-d link is one hop but drops 90% of transfers
// (20 ms / 0.1 = 200 ms expected); the clean a>b>c>d detour costs
// 3 x 20 ms = 60 ms and wins. Severing a detour link forces traffic
// back onto the lossy shortcut; restoring it flips the route again,
// deterministically.
func TestWeightedRoutesAvoidLossyShortcut(t *testing.T) {
	campus, err := NewCampus(CampusConfig{
		Seed: 1,
		Links: []BackboneLink{
			{A: "a", B: "b"}, {A: "b", B: "c"}, {A: "c", B: "d"},
			{A: "d", B: "a", Config: LinkConfig{PER: 0.9}},
		},
	}, smallUnit("a", "a"), smallUnit("b", "b"), smallUnit("c", "c"), smallUnit("d", "d"))
	if err != nil {
		t.Fatal(err)
	}
	defer campus.Stop()
	bb := campus.Backbone()
	if got := pathString(campus, bb.Route(0, 3)); got != "a>b>c>d" {
		t.Fatalf("route a->d = %s, want the clean three-hop detour over the 90%%-loss direct link", got)
	}
	if hops := bb.Hops(0, 3); hops != 3 {
		t.Fatalf("hops a->d = %d, want 3", hops)
	}
	// Min-hop would keep a>d here; prove the divergence both ways.
	if err := bb.SetLinkDown("b", "c"); err != nil {
		t.Fatal(err)
	}
	if got := pathString(campus, bb.Route(0, 3)); got != "a>d" {
		t.Fatalf("route a->d with the detour severed = %s, want the lossy direct link", got)
	}
	if err := bb.SetLinkUp("b", "c"); err != nil {
		t.Fatal(err)
	}
	if got := pathString(campus, bb.Route(0, 3)); got != "a>b>c>d" {
		t.Fatalf("route a->d after restore = %s, want the detour back", got)
	}
}

// TestWeightedRouteTieBreaksDeterministic: equal-cost routes prefer
// fewer hops, then the lowest-index predecessor — uniform link weights
// reduce to the PR-3 min-hop behavior.
func TestWeightedRouteTieBreaksDeterministic(t *testing.T) {
	// A diamond: a-b-d and a-c-d, all links identical. Both two-hop
	// routes cost the same; the tie must resolve through b (lower index)
	// on every recomputation.
	campus, err := NewCampus(CampusConfig{
		Seed: 1,
		Links: []BackboneLink{
			{A: "a", B: "b"}, {A: "a", B: "c"}, {A: "b", B: "d"}, {A: "c", B: "d"},
		},
	}, smallUnit("a", "a"), smallUnit("b", "b"), smallUnit("c", "c"), smallUnit("d", "d"))
	if err != nil {
		t.Fatal(err)
	}
	defer campus.Stop()
	bb := campus.Backbone()
	for i := 0; i < 3; i++ {
		if got := pathString(campus, bb.Route(0, 3)); got != "a>b>d" {
			t.Fatalf("route a->d = %s, want the lowest-index two-hop path", got)
		}
		// Force recomputation: sever and restore an uninvolved... there
		// is no uninvolved link in the diamond, so flap the losing side.
		if err := bb.SetLinkDown("c", "d"); err != nil {
			t.Fatal(err)
		}
		if err := bb.SetLinkUp("c", "d"); err != nil {
			t.Fatal(err)
		}
	}
}

// TestInFlightFrameDropsOnSeverThenReroutes: a transfer already in the
// air when its link is severed drops on arrival, and the retransmission
// re-resolves the route around the outage (publishing a Reroute event).
func TestInFlightFrameDropsOnSeverThenReroutes(t *testing.T) {
	cfg := CampusConfig{Seed: 1, Backbone: BackboneConfig{
		Latency: time.Second, RetryAfter: 100 * time.Millisecond,
	}}
	campus := ringCampus(t, cfg)
	defer campus.Stop()
	log := campus.Events().Log()
	bb := campus.Backbone()
	delivered, failed := 0, 0
	bb.Send(3, 0, []byte("payload"), func([]byte) { delivered++ }, func() { failed++ })
	campus.Engine().After(500*time.Millisecond, func() { _ = bb.SetLinkDown("d", "a") })
	campus.Run(10 * time.Second)
	if delivered != 1 || failed != 0 {
		t.Fatalf("delivered=%d failed=%d, want the transfer to survive the sever", delivered, failed)
	}
	st := bb.Stats()
	if st.Dropped < 1 {
		t.Fatalf("stats = %+v, want the in-flight frame dropped", st)
	}
	reroutes := 0
	for _, ev := range log.Events() {
		if re, ok := ev.(BackboneRouteEvent); ok && re.Reroute {
			reroutes++
			if len(re.Path) != 4 {
				t.Fatalf("reroute path = %v, want the long way round", re.Path)
			}
		}
	}
	if reroutes != 1 {
		t.Fatalf("reroute events = %d, want 1", reroutes)
	}
	if vs := CheckEvents(log.Events(), NewRouteMonotonicityInvariant()); len(vs) != 0 {
		t.Fatalf("route monotonicity violated: %v", vs)
	}
}

// TestLinkFaultValidation: cell-level plans reject link steps, campus
// plans reject unknown cells, and sever/restore of unknown links error.
func TestLinkFaultValidation(t *testing.T) {
	campus, err := NewCampus(CampusConfig{Seed: 1}, smallUnit("n", "n"), smallUnit("s", "s"))
	if err != nil {
		t.Fatal(err)
	}
	defer campus.Stop()
	step := FaultStep{At: time.Second, LinkDown: &LinkRef{A: "n", B: "s"}}
	if err := campus.Cells()[0].ApplyFaultPlan(FaultPlan{Steps: []FaultStep{step}}); err == nil {
		t.Fatal("cell accepted a backbone link fault step")
	}
	bad := FaultStep{At: time.Second, LinkDown: &LinkRef{A: "n", B: "nope"}}
	if err := campus.ApplyFaultPlan("", FaultPlan{Steps: []FaultStep{bad}}); err == nil {
		t.Fatal("campus accepted a link step naming an unknown cell")
	}
	if err := campus.ApplyFaultPlan("", FaultPlan{Steps: []FaultStep{step}}); err != nil {
		t.Fatal(err)
	}
	ring := ringCampus(t, CampusConfig{Seed: 1})
	defer ring.Stop()
	if err := ring.Backbone().SetLinkDown("a", "c"); err == nil {
		t.Fatal("severed a ring link that does not exist")
	}
	if err := ring.Backbone().SetLinkUp("a", "c"); err == nil {
		t.Fatal("restored a ring link that does not exist")
	}
	ghost := FaultStep{At: time.Second, LinkDown: &LinkRef{A: "a", B: "c"}}
	if err := ring.ApplyFaultPlan("", FaultPlan{Steps: []FaultStep{ghost}}); err == nil {
		t.Fatal("campus accepted a plan severing a link absent from the explicit topology")
	}
}

// TestPartitionedCellFailsOverLocallyThenEscalatesWhenRejoined: with its
// only backbone link severed, a cell resolves a primary crash by
// ordinary in-cell fail-over; once local candidates are exhausted the
// coordinator keeps reporting the overload but cannot migrate — until
// the link is restored, when the deferred escalation completes.
func TestPartitionedCellFailsOverLocallyThenEscalatesWhenRejoined(t *testing.T) {
	campus, err := NewCampus(CampusConfig{
		Seed:  1,
		Links: []BackboneLink{{A: "n", B: "s"}},
	}, smallUnit("n", "n"), smallUnit("s", "s"))
	if err != nil {
		t.Fatal(err)
	}
	defer campus.Stop()
	log := campus.Events().Log()
	plan := FaultPlan{Name: "partition-then-kill", Steps: []FaultStep{
		{At: 2 * time.Second, LinkDown: &LinkRef{A: "n", B: "s"}},
		{At: 5 * time.Second, CrashNode: 3},
		{At: 12 * time.Second, CrashNode: 4},
		{At: 20 * time.Second, LinkUp: &LinkRef{A: "n", B: "s"}},
	}}
	if err := campus.ApplyFaultPlan("n", plan); err != nil {
		t.Fatal(err)
	}
	campus.Run(30 * time.Second)

	var localFailoverAt, migratedAt time.Duration
	overloads := 0
	for _, ev := range log.Events() {
		switch e := ev.(type) {
		case CellEvent:
			if fo, ok := e.Inner.(FailoverEvent); ok && e.Cell == "n" && fo.Task == "n-loop" && localFailoverAt == 0 {
				localFailoverAt = fo.At
			}
		case CellOverloadEvent:
			overloads++
		case InterCellMigrationEvent:
			if migratedAt == 0 {
				migratedAt = e.At
			}
		}
	}
	if localFailoverAt == 0 || localFailoverAt > 12*time.Second {
		t.Fatalf("partitioned cell did not fail over locally (failover at %v)", localFailoverAt)
	}
	if overloads == 0 {
		t.Fatal("candidate exhaustion under partition raised no overload")
	}
	if migratedAt == 0 {
		t.Fatal("escalation never completed after the partition healed")
	}
	if migratedAt < 20*time.Second {
		t.Fatalf("task escaped the partition at %v, before the link was restored", migratedAt)
	}
	p := campus.TaskPlacements()["n/n-loop"]
	if !p.Foreign || p.Cell != "s" {
		t.Fatalf("placement = %+v, want foreign in s after the partition healed", p)
	}
	if vs := CheckEvents(log.Events(), DefaultInvariants()...); len(vs) != 0 {
		t.Fatalf("invariants violated: %v", vs)
	}
}
