package evm

import (
	"fmt"
	"time"
)

// Federation scenario names registered with the global registry.
const (
	// ScenarioRefinery is a 4-cell x 16-node campus: four process units,
	// each a full TDMA cell with its own gateway, head, four control
	// loops and six spare nodes, bridged by the backbone. The workload
	// class is an order of magnitude above the single-cell scenarios.
	ScenarioRefinery = "refinery"
	// ScenarioCampusFailover is the self-contained federation demo: a
	// two-cell campus where one cell dies wholesale at t=10s and the
	// coordinator resumes its control loop in the peer cell.
	ScenarioCampusFailover = "campus-failover"
	// ScenarioRefineryRing is the refinery campus on an explicit ring
	// backbone (a-b-c-d-a) whose far side is lossy, with homeward
	// rebalancing enabled — the policy-comparison workload: the spec's
	// Policy decides where escalated tasks land, and routing-aware
	// policies avoid the lossy two-hop path.
	ScenarioRefineryRing = "refinery-ring"
	// ScenarioRefineryRingSever is the link-dynamics acceptance workload:
	// the refinery on a clean ring whose unit-a dies at 10s and recovers
	// at 22s, while the d-a ring link is severed mid-outage (12s) and
	// only repaired at 30s. Escalated tasks rebalance home through the
	// prepare/commit handshake, with traffic from unit-d forced the long
	// way round (d-c-b-a); the invariant harness must find zero
	// dual-master ticks.
	ScenarioRefineryRingSever = "refinery-ring-sever"
)

// RefineryCellNodes is the member count of every refinery unit; node IDs
// run 1..RefineryCellNodes (gateway 1, head 2, loop pairs 3..10, spares
// 11..16). Fault plans that target a whole unit crash this ID range.
const RefineryCellNodes = 16

// RefineryMembers returns the node IDs of one refinery unit, for
// building whole-cell fault plans without a live campus.
func RefineryMembers() []NodeID {
	ids := make([]NodeID, RefineryCellNodes)
	for i := range ids {
		ids[i] = NodeID(i + 1)
	}
	return ids
}

func init() {
	MustRegisterScenario(ScenarioRefinery, buildRefineryScenario)
	MustRegisterScenario(ScenarioCampusFailover, buildCampusFailoverScenario)
	MustRegisterScenario(ScenarioRefineryRing, buildRefineryRingScenario)
	MustRegisterScenario(ScenarioRefineryRingSever, buildRefineryRingSeverScenario)
}

// campusPID is the shared synthetic control law for federation cells.
func campusPID() (TaskLogic, error) {
	return NewPIDLogic(PIDParams{Kp: 2, Ki: 0.3, OutMin: 0, OutMax: 100,
		Setpoint: 50, CutoffHz: 0.4, RateHz: 4})
}

// refineryUnit declares one process-unit cell of the refinery campus:
// 16 nodes on a 4x4 grid — gateway 1, head 2, four primary/backup loop
// pairs on nodes 3..10, spares 11..16 — plus a synthetic four-port feed.
// Task IDs carry the unit letter so they stay campus-unique.
func refineryUnit(letter string) CellSpec {
	tasks := make([]TaskSpec, 0, 4)
	for i := 0; i < 4; i++ {
		tasks = append(tasks, TaskSpec{
			ID:              fmt.Sprintf("%s-loop-%d", letter, i),
			SensorPort:      uint8(i),
			ActuatorPort:    uint8(10 + i),
			Period:          250 * time.Millisecond,
			WCET:            5 * time.Millisecond,
			Candidates:      []NodeID{NodeID(3 + 2*i), NodeID(4 + 2*i)},
			DeviationTol:    5,
			DeviationWindow: 4,
			SilenceWindow:   8,
			MakeLogic:       campusPID,
		})
	}
	name := "unit-" + letter
	return CellSpec{
		Name: name,
		Options: []CellOption{
			WithNodeCount(RefineryCellNodes),
			WithPlacement(Grid(4, 4)),
			// Three TX slots: after a fail-over one controller may hold
			// two active loops (two actuations + one health bundle).
			WithSlotsPerNode(3),
			WithPER(0),
		},
		VC: VCConfig{Name: name, Head: 2, Gateway: 1, Tasks: tasks, DormantAfter: 5 * time.Second},
		Feed: &FeedSpec{
			Source: 1,
			Period: 250 * time.Millisecond,
			Sample: func() []SensorReading {
				return []SensorReading{
					{Port: 0, Value: 50}, {Port: 1, Value: 49},
					{Port: 2, Value: 51}, {Port: 3, Value: 50},
				}
			},
		},
	}
}

// campusMetrics summarizes coordinator placements: how many tasks exist,
// how many run outside their origin cell, how many sit on live nodes,
// and how many are back home in their origin cell.
func campusMetrics(campus *Campus) func() map[string]float64 {
	return func() map[string]float64 {
		placements := campus.TaskPlacements()
		foreign, alive := 0, 0
		//evm:allow-maporder commutative integer counts over pure read-only lookups; visit order cannot change the totals
		for _, p := range placements {
			if p.Foreign {
				foreign++
			}
			cell := campus.Cell(p.Cell)
			if r := cell.Medium().Radio(p.Node); r != nil && !r.Failed() {
				alive++
			}
		}
		return map[string]float64{
			"tasks_total":   float64(len(placements)),
			"tasks_foreign": float64(foreign),
			"tasks_alive":   float64(alive),
			"tasks_home":    float64(len(placements) - foreign),
		}
	}
}

// refineryCells declares the four process-unit cells of the refinery.
func refineryCells() []CellSpec {
	units := []string{"a", "b", "c", "d"}
	cells := make([]CellSpec, 0, len(units))
	for _, u := range units {
		cells = append(cells, refineryUnit(u))
	}
	return cells
}

// buildRefineryScenario assembles the 4x16 refinery campus on the
// default full-mesh backbone. Fault plans from the RunSpec target the
// cell named by FaultCell (default unit-a); spec.Policy selects the
// placement policy (default least-loaded).
func buildRefineryScenario(spec RunSpec) (*Experiment, error) {
	policy, err := NewPlacementPolicy(spec.Policy)
	if err != nil {
		return nil, err
	}
	campus, err := NewCampus(CampusConfig{Seed: spec.Seed, Placement: policy}, refineryCells()...)
	if err != nil {
		return nil, err
	}
	return &Experiment{
		Campus:         campus,
		Policy:         policy.Name(),
		DefaultHorizon: 30 * time.Second,
		Metrics:        campusMetrics(campus),
		Cleanup:        campus.Stop,
	}, nil
}

// buildRefineryRingScenario assembles the refinery on an explicit ring
// backbone — the policy-comparison topology. Links a-b and d-a are
// clean; the far side (b-c and c-d) drops 90% of hops, so reaching
// unit-c from unit-a costs two hops with a near-certain retransmit.
// Placement policies that ignore the backbone (least-loaded) ship tasks
// into that path and strand them for extra coordinator ticks; the
// campus-BQP policy prices hops and keeps every transfer on the clean
// one-hop links. Homeward rebalancing is on: when a killed unit
// recovers, its tasks migrate back.
func buildRefineryRingScenario(spec RunSpec) (*Experiment, error) {
	policy, err := NewPlacementPolicy(spec.Policy)
	if err != nil {
		return nil, err
	}
	cfg := CampusConfig{
		Seed:      spec.Seed,
		Placement: policy,
		Rebalance: HomewardRebalance{},
		Backbone: BackboneConfig{
			RetryAfter: 150 * time.Millisecond,
			MaxRetries: 2,
		},
		Links: []BackboneLink{
			{A: "unit-a", B: "unit-b"},
			{A: "unit-b", B: "unit-c", Config: LinkConfig{PER: 0.9}},
			{A: "unit-c", B: "unit-d", Config: LinkConfig{PER: 0.9}},
			{A: "unit-d", B: "unit-a"},
		},
	}
	campus, err := NewCampus(cfg, refineryCells()...)
	if err != nil {
		return nil, err
	}
	return &Experiment{
		Campus:         campus,
		Policy:         policy.Name(),
		DefaultHorizon: 35 * time.Second,
		Metrics:        campusMetrics(campus),
		Cleanup:        campus.Stop,
	}, nil
}

// buildRefineryRingSeverScenario assembles the refinery on a clean ring
// backbone with its fault choreography built in: unit-a dies wholesale
// at 10s (its four loops escalate over the ring) and recovers at 22s;
// the d-a ring link is severed at 12s — mid-outage — and repaired at
// 30s. When the recovered unit-a takes its loops back through the
// prepare/commit handshake, any loop hosted in unit-d must travel the
// long way round the severed ring (d-c-b-a), visible as a three-hop
// BackboneRouteEvent. The scenario is the acceptance workload for link
// dynamics + single-master safety: same-seed campus streams are
// byte-identical and the invariant harness reports zero dual-master
// ticks.
func buildRefineryRingSeverScenario(spec RunSpec) (*Experiment, error) {
	policy, err := NewPlacementPolicy(spec.Policy)
	if err != nil {
		return nil, err
	}
	cfg := CampusConfig{
		Seed:      spec.Seed,
		Placement: policy,
		Rebalance: HomewardRebalance{},
		Backbone: BackboneConfig{
			RetryAfter: 150 * time.Millisecond,
			MaxRetries: 4,
		},
		Links: []BackboneLink{
			{A: "unit-a", B: "unit-b"},
			{A: "unit-b", B: "unit-c"},
			{A: "unit-c", B: "unit-d"},
			{A: "unit-d", B: "unit-a"},
		},
	}
	campus, err := NewCampus(cfg, refineryCells()...)
	if err != nil {
		return nil, err
	}
	choreography := RefineryOutagePlan(10*time.Second, 22*time.Second)
	choreography.Name = "outage-and-sever"
	choreography.Steps = append(choreography.Steps,
		FaultStep{At: 12 * time.Second, LinkDown: &LinkRef{A: "unit-d", B: "unit-a"}},
		FaultStep{At: 30 * time.Second, LinkUp: &LinkRef{A: "unit-d", B: "unit-a"}},
	)
	if err := campus.ApplyFaultPlan("unit-a", choreography); err != nil {
		campus.Stop()
		return nil, err
	}
	return &Experiment{
		Campus:         campus,
		Policy:         policy.Name(),
		DefaultHorizon: 40 * time.Second,
		Metrics:        campusMetrics(campus),
		Cleanup:        campus.Stop,
	}, nil
}

// RefineryOutagePlan is the policy-experiment fault plan: unit-a dies
// wholesale at from and recovers at until, driving escalation out over
// the ring and — on refinery-ring — rebalancing back home.
func RefineryOutagePlan(from, until time.Duration) FaultPlan {
	return OutageWindowPlan("outage-unit-a", from, until, RefineryMembers()...)
}

// buildCampusFailoverScenario is the two-cell outage demo: cell west
// runs one loop, cell east runs another with spare capacity; at t=10s
// every radio in west crashes and the coordinator ships west's loop over
// the backbone into east, where it resumes actuating.
func buildCampusFailoverScenario(spec RunSpec) (*Experiment, error) {
	policy, err := NewPlacementPolicy(spec.Policy)
	if err != nil {
		return nil, err
	}
	unit := func(name, taskPrefix string) CellSpec {
		return CellSpec{
			Name: name,
			Options: []CellOption{
				WithNodeCount(6),
				WithPlacement(Grid(3, 2)),
				WithSlotsPerNode(3),
				WithPER(0),
			},
			VC: VCConfig{
				Name: name, Head: 2, Gateway: 1,
				Tasks: []TaskSpec{{
					ID:              taskPrefix + "-loop",
					SensorPort:      0,
					ActuatorPort:    10,
					Period:          250 * time.Millisecond,
					WCET:            5 * time.Millisecond,
					Candidates:      []NodeID{3, 4},
					DeviationTol:    5,
					DeviationWindow: 4,
					SilenceWindow:   8,
					MakeLogic:       campusPID,
				}},
				DormantAfter: 5 * time.Second,
			},
			Feed: &FeedSpec{
				Source: 1,
				Period: 250 * time.Millisecond,
				Sample: func() []SensorReading {
					return []SensorReading{{Port: 0, Value: 50}}
				},
			},
		}
	}
	campus, err := NewCampus(CampusConfig{Seed: spec.Seed, Placement: policy},
		unit("west", "w"), unit("east", "e"))
	if err != nil {
		return nil, err
	}
	if err := campus.ApplyFaultPlan("west", KillCellPlan(10*time.Second, campus.Cell("west"))); err != nil {
		campus.Stop()
		return nil, err
	}
	return &Experiment{
		Campus:         campus,
		Policy:         policy.Name(),
		DefaultHorizon: 30 * time.Second,
		Metrics:        campusMetrics(campus),
		Cleanup:        campus.Stop,
	}, nil
}
