package evm

import (
	"fmt"
	"time"

	"evm/internal/rtlink"
)

// ScenarioRandomField is the large-cell random-topology workload open
// since PR 1: 50 nodes scattered uniformly over a 20 m square (every
// pair inside the 30 m radio range), eight control loops on sixteen
// candidate controllers, and a TDMA frame widened to fit the whole
// membership. Placement randomness comes from a dedicated fork of the
// cell seed, so equal seeds reproduce the field — and the event stream —
// byte for byte.
const ScenarioRandomField = "random-field"

// RandomFieldNodes is the member count of the random-field cell.
const RandomFieldNodes = 50

func init() {
	MustRegisterScenario(ScenarioRandomField, buildRandomFieldScenario)
}

// randomFieldLink widens the default 50-slot frame so all 50 members own
// SlotsPerNode slots: 102 slots of 5 ms = a 510 ms frame, paired with
// 1 s control loops.
func randomFieldLink() rtlink.Config {
	cfg := rtlink.DefaultConfig()
	cfg.SlotsPerFrame = 2*RandomFieldNodes + 2
	return cfg
}

// buildRandomFieldScenario assembles the 50-node random cell: gateway 1,
// head 2, eight loops with primary/backup pairs on nodes 3..18, spares
// up to 50.
func buildRandomFieldScenario(spec RunSpec) (*Experiment, error) {
	cell, err := NewCellWith(CellConfig{Seed: spec.Seed, Link: randomFieldLink()},
		WithNodeCount(RandomFieldNodes),
		WithPlacement(RandomUniform(20)),
		WithPER(0))
	if err != nil {
		return nil, err
	}
	tasks := make([]TaskSpec, 0, 8)
	for i := 0; i < 8; i++ {
		tasks = append(tasks, TaskSpec{
			ID:              fmt.Sprintf("field-%d", i),
			SensorPort:      uint8(i),
			ActuatorPort:    uint8(10 + i),
			Period:          time.Second,
			WCET:            5 * time.Millisecond,
			Candidates:      []NodeID{NodeID(3 + 2*i), NodeID(4 + 2*i)},
			DeviationTol:    5,
			DeviationWindow: 4,
			SilenceWindow:   8,
			MakeLogic:       campusPID,
		})
	}
	vc := VCConfig{Name: "field", Head: 2, Gateway: 1, Tasks: tasks, DormantAfter: 5 * time.Second}
	if err := cell.Deploy(vc); err != nil {
		return nil, err
	}
	feed, err := cell.StartSensorFeed(1, time.Second, func() []SensorReading {
		out := make([]SensorReading, 8)
		for i := range out {
			out[i] = SensorReading{Port: uint8(i), Value: 50 + float64(i%3) - 1}
		}
		return out
	})
	if err != nil {
		cell.Stop()
		return nil, err
	}
	return &Experiment{
		Cell:           cell,
		DefaultHorizon: 40 * time.Second,
		Metrics: func() map[string]float64 {
			rep := EvaluateQoS(vc, cell.Nodes())
			return map[string]float64{
				"coverage":  rep.CoverageRatio,
				"redundant": float64(rep.Redundant),
				"tasks":     float64(rep.Tasks),
				"members":   float64(len(cell.Members())),
			}
		},
		QoS: func() QoSReport { return EvaluateQoS(vc, cell.Nodes()) },
		Cleanup: func() {
			feed.Stop()
			cell.Stop()
		},
	}, nil
}
