package evm

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestPlacementPolicyRegistry covers the policy registry surface: the
// three built-ins are listed, the empty name resolves to the default,
// and unknown names error.
func TestPlacementPolicyRegistry(t *testing.T) {
	names := PlacementPolicies()
	for _, want := range []string{PolicyLeastLoaded, PolicyCampusBQP, PolicyAffinity} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("built-in policy %q not registered (got %v)", want, names)
		}
	}
	p, err := NewPlacementPolicy("")
	if err != nil || p.Name() != PolicyLeastLoaded {
		t.Fatalf("empty policy name = %v, %v; want least-loaded", p, err)
	}
	if _, err := NewPlacementPolicy("no-such-policy"); err == nil {
		t.Fatal("unknown policy name accepted")
	}
	if err := RegisterPlacementPolicy(PolicyAffinity, func() PlacementPolicy { return AffinityPolicy{} }); err == nil {
		t.Fatal("duplicate policy registration accepted")
	}
}

// TestLeastLoadedPolicyMatchesLegacyCoordinator guards the refactor: an
// explicit LeastLoadedPolicy produces a campus event stream
// byte-identical to the default (nil-policy) configuration.
func TestLeastLoadedPolicyMatchesLegacyCoordinator(t *testing.T) {
	run := func(policy PlacementPolicy) []string {
		campus, err := NewCampus(CampusConfig{Seed: 42, Placement: policy}, refineryCells()...)
		if err != nil {
			t.Fatal(err)
		}
		defer campus.Stop()
		if err := campus.ApplyFaultPlan("unit-a",
			KillCellPlan(10*time.Second, campus.Cell("unit-a"))); err != nil {
			t.Fatal(err)
		}
		log := campus.Events().Log()
		campus.Run(25 * time.Second)
		return log.Strings()
	}
	def := run(nil)
	explicit := run(LeastLoadedPolicy{})
	if len(def) == 0 {
		t.Fatal("no campus events recorded")
	}
	if !reflect.DeepEqual(def, explicit) {
		t.Fatal("explicit least-loaded policy diverges from the default coordinator")
	}
}

// TestCampusBQPFewerOverloadsOnRing is the PR's acceptance comparison:
// on the refinery-ring scenario (explicit non-mesh backbone, lossy far
// side) with identical seeds and the same outage plan, the routing-aware
// campus-BQP policy strands unit-a's tasks for strictly fewer
// coordinator overload ticks than topology-blind least-loaded, and all
// of its transfers stay on one-hop routes.
func TestCampusBQPFewerOverloadsOnRing(t *testing.T) {
	plan := RefineryOutagePlan(10*time.Second, 22*time.Second)
	for _, seed := range []uint64{2, 3, 4, 5} {
		var overloads [2]float64
		for i, pol := range []string{PolicyLeastLoaded, PolicyCampusBQP} {
			res := (&Runner{Workers: 1}).Run([]RunSpec{{
				Scenario: ScenarioRefineryRing, Seed: seed, Horizon: 35 * time.Second,
				Faults: plan, FaultCell: "unit-a", Policy: pol,
			}})
			if res[0].Err != nil {
				t.Fatalf("seed %d policy %s: %v", seed, pol, res[0].Err)
			}
			overloads[i] = res[0].Metrics[MetricCellOverloads]
			if pol == PolicyCampusBQP {
				if drops := res[0].Metrics[MetricBackboneDropped]; drops != 0 {
					t.Fatalf("seed %d: campus-bqp used lossy links (%v drops)", seed, drops)
				}
			}
			// The outage must actually resolve: every unit-a task leaves
			// and eventually rebalances home.
			if res[0].Metrics[MetricRebalances] != 4 {
				t.Fatalf("seed %d policy %s: rebalances = %v, want 4",
					seed, pol, res[0].Metrics[MetricRebalances])
			}
			if res[0].Metrics["tasks_foreign"] != 0 {
				t.Fatalf("seed %d policy %s: %v tasks still foreign at horizon",
					seed, pol, res[0].Metrics["tasks_foreign"])
			}
		}
		if overloads[1] >= overloads[0] {
			t.Fatalf("seed %d: campus-bqp overloads %v !< least-loaded %v",
				seed, overloads[1], overloads[0])
		}
	}
}

// TestCampusBQPAvoidsMultiHopRoutes inspects the route events directly:
// under campus-bqp every escalation out of unit-a rides a one-hop ring
// link, while least-loaded provably routes through the two-hop lossy
// path on the same seed.
func TestCampusBQPAvoidsMultiHopRoutes(t *testing.T) {
	run := func(policy string) (maxHops int) {
		exp, err := BuildScenario(RunSpec{Scenario: ScenarioRefineryRing, Seed: 3, Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		defer exp.Cleanup()
		if err := exp.Campus.ApplyFaultPlan("unit-a",
			KillCellPlan(10*time.Second, exp.Campus.Cell("unit-a"))); err != nil {
			t.Fatal(err)
		}
		sub := exp.Campus.Events().Subscribe(func(ev Event) {
			if re, ok := ev.(BackboneRouteEvent); ok && re.From == "unit-a" {
				if h := len(re.Path) - 1; h > maxHops {
					maxHops = h
				}
			}
		})
		defer sub.Cancel()
		exp.Campus.Run(20 * time.Second)
		return maxHops
	}
	if hops := run(PolicyCampusBQP); hops != 1 {
		t.Fatalf("campus-bqp max route hops = %d, want 1", hops)
	}
	if hops := run(PolicyLeastLoaded); hops < 2 {
		t.Fatalf("least-loaded max route hops = %d, want >= 2 (the lossy path)", hops)
	}
}

// TestRingBackboneRouting covers the explicit-topology backbone: BFS
// shortest paths with deterministic tie-breaks, unreachable cells, and
// accumulated per-hop latency.
func TestRingBackboneRouting(t *testing.T) {
	unit := func(name string) CellSpec {
		return CellSpec{
			Name:    name,
			Options: []CellOption{WithNodeCount(4), WithPER(0)},
			VC: VCConfig{
				Name: name, Head: 2, Gateway: 1,
				Tasks: []TaskSpec{{
					ID: name + "-loop", SensorPort: 0, ActuatorPort: 10,
					Period: 250 * time.Millisecond, WCET: 5 * time.Millisecond,
					Candidates:   []NodeID{3, 4},
					DeviationTol: 5, DeviationWindow: 4, SilenceWindow: 8,
					MakeLogic: campusPID,
				}},
			},
		}
	}
	campus, err := NewCampus(CampusConfig{
		Seed: 1,
		Links: []BackboneLink{
			{A: "a", B: "b"},
			{A: "b", B: "c"},
			{A: "c", B: "d"},
			{A: "d", B: "a"},
		},
	}, unit("a"), unit("b"), unit("c"), unit("d"), unit("e"))
	if err != nil {
		t.Fatal(err)
	}
	defer campus.Stop()
	bb := campus.Backbone()
	if bb.Mesh() {
		t.Fatal("explicit links left the backbone in mesh mode")
	}
	// a -> c has two 2-hop routes; BFS over ascending neighbors picks b.
	if got := bb.Route(0, 2); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("route a->c = %v, want [0 1 2]", got)
	}
	if got := bb.Hops(0, 2); got != 2 {
		t.Fatalf("hops a->c = %d, want 2", got)
	}
	if got := bb.Hops(0, 3); got != 1 {
		t.Fatalf("hops a->d = %d, want 1", got)
	}
	// Cell e is off the ring: unreachable.
	if got := bb.Hops(0, 4); got != -1 {
		t.Fatalf("hops a->e = %d, want -1 (unreachable)", got)
	}
	if got := bb.Route(0, 4); got != nil {
		t.Fatalf("route a->e = %v, want nil", got)
	}
	// An unreachable Send fails immediately via onFail.
	failed := false
	bb.Send(0, 4, []byte("x"), nil, func() { failed = true })
	campus.Run(time.Second)
	if !failed {
		t.Fatal("send to unreachable cell did not invoke onFail")
	}
	// A 2-hop transfer pays both links' latency (2 x 20ms default plus
	// serialization) — strictly more than a 1-hop transfer.
	var oneHop, twoHop time.Duration
	start := campus.Now()
	bb.Send(0, 3, []byte("x"), func([]byte) { oneHop = campus.Now() - start }, nil)
	bb.Send(0, 2, []byte("x"), func([]byte) { twoHop = campus.Now() - start }, nil)
	campus.Run(time.Second)
	if oneHop <= 0 || twoHop <= 0 {
		t.Fatalf("transfers not delivered (one=%v two=%v)", oneHop, twoHop)
	}
	if twoHop < 2*oneHop {
		t.Fatalf("two-hop delivery %v not >= 2x one-hop %v", twoHop, oneHop)
	}
}

// TestAddLinkValidation covers the AddLink error paths.
func TestAddLinkValidation(t *testing.T) {
	unit := func(name string) CellSpec {
		return CellSpec{
			Name:    name,
			Options: []CellOption{WithNodeCount(4), WithPER(0)},
			VC: VCConfig{
				Name: name, Head: 2, Gateway: 1,
				Tasks: []TaskSpec{{
					ID: name + "-loop", SensorPort: 0, ActuatorPort: 10,
					Period: 250 * time.Millisecond, WCET: 5 * time.Millisecond,
					Candidates:   []NodeID{3, 4},
					DeviationTol: 5, DeviationWindow: 4, SilenceWindow: 8,
					MakeLogic: campusPID,
				}},
			},
		}
	}
	campus, err := NewCampus(CampusConfig{Seed: 1}, unit("x"), unit("y"))
	if err != nil {
		t.Fatal(err)
	}
	defer campus.Stop()
	bb := campus.Backbone()
	if err := bb.AddLink("x", "nowhere", LinkConfig{}); err == nil {
		t.Fatal("link to unknown cell accepted")
	}
	if err := bb.AddLink("x", "x", LinkConfig{}); err == nil {
		t.Fatal("self-link accepted")
	}
	if err := bb.AddLink("x", "y", LinkConfig{PER: 1.5}); err == nil {
		t.Fatal("PER outside [0,1) accepted")
	}
	if !bb.Mesh() {
		t.Fatal("rejected links switched the backbone out of mesh mode")
	}
	if err := bb.AddLink("x", "y", LinkConfig{}); err != nil {
		t.Fatal(err)
	}
	if bb.Mesh() {
		t.Fatal("AddLink did not switch to the explicit topology")
	}
}

// TestRebalanceHomeAfterRecovery drives the whole-cell kill + recovery
// acceptance run: unit-a dies at 10s, its four loops escalate out, the
// cell recovers at 22s, CellRecoveredEvent fires, and the
// RebalancePolicy ships every task home over the backbone, where it
// resumes actuating.
func TestRebalanceHomeAfterRecovery(t *testing.T) {
	exp, err := BuildScenario(RunSpec{Scenario: ScenarioRefineryRing, Seed: 2, Policy: PolicyCampusBQP})
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Cleanup()
	if err := exp.Campus.ApplyFaultPlan("unit-a",
		RefineryOutagePlan(10*time.Second, 22*time.Second)); err != nil {
		t.Fatal(err)
	}
	log := exp.Campus.Events().Log()
	exp.Campus.Run(35 * time.Second)

	recovered := false
	out, home := 0, 0
	var lastRebalanceAt time.Duration
	for _, ev := range log.Events() {
		switch e := ev.(type) {
		case CellRecoveredEvent:
			if e.Cell == "unit-a" {
				recovered = true
			}
		case InterCellMigrationEvent:
			if e.Rebalance {
				home++
				lastRebalanceAt = e.At
				if e.ToCell != "unit-a" {
					t.Fatalf("rebalance event to %s, want unit-a", e.ToCell)
				}
				if !recovered {
					t.Fatal("rebalance happened before the recovery event")
				}
			} else {
				out++
			}
		}
	}
	if !recovered {
		t.Fatal("no CellRecoveredEvent for unit-a")
	}
	if out != 4 || home != 4 {
		t.Fatalf("migrations out=%d home=%d, want 4 and 4", out, home)
	}
	for key, p := range exp.Campus.TaskPlacements() {
		if !strings.HasPrefix(key, "unit-a/") {
			continue
		}
		if p.Foreign || p.Cell != "unit-a" {
			t.Fatalf("placement %s = %+v, want home in unit-a", key, p)
		}
	}
	// The rebalanced loops actuate again inside unit-a after coming home.
	resumed := 0
	for _, ev := range log.Events() {
		ce, ok := ev.(CellEvent)
		if !ok || ce.Cell != "unit-a" || ce.When() <= lastRebalanceAt {
			continue
		}
		if act, isAct := ce.Inner.(ActuationEvent); isAct && strings.HasPrefix(act.Task, "a-loop-") {
			resumed++
		}
	}
	if resumed == 0 {
		t.Fatal("rebalanced tasks never actuated in unit-a after coming home")
	}
	// Exactly one master survives campus-wide: no foreign replica of a
	// rebalanced task still actuates in a peer cell after homecoming.
	for _, ev := range log.Events() {
		ce, ok := ev.(CellEvent)
		if !ok || ce.Cell == "unit-a" || ce.When() <= lastRebalanceAt+time.Second {
			continue
		}
		if act, isAct := ce.Inner.(ActuationEvent); isAct && strings.HasPrefix(act.Task, "a-loop-") {
			t.Fatalf("retired foreign replica of %s still actuating in %s at %v",
				act.Task, ce.Cell, ce.When())
		}
	}
}

// TestForeignTaskAdoptionLocalFailover covers the adoption satellite:
// after an inter-cell migration the hosting cell's head has registered
// the task with an in-cell backup, so when the hosting node dies the
// fail-over happens inside the cell — a FailoverEvent, no second
// backbone round-trip.
func TestForeignTaskAdoptionLocalFailover(t *testing.T) {
	exp, err := BuildScenario(RunSpec{Scenario: ScenarioCampusFailover, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Cleanup()
	campus := exp.Campus
	log := campus.Events().Log()
	// West dies at 10s (scenario built-in); let the migration settle.
	campus.Run(15 * time.Second)
	p, ok := campus.TaskPlacements()["west/w-loop"]
	if !ok || !p.Foreign || p.Cell != "east" {
		t.Fatalf("placement after outage = %+v, want foreign in east", p)
	}
	hostNode := p.Node
	migsBefore := log.Count(func(ev Event) bool {
		_, isMig := ev.(InterCellMigrationEvent)
		return isMig
	})
	// Kill the hosting node inside east: adoption must resolve this
	// locally via east's head.
	if err := campus.ApplyFaultPlan("east", KillNodesPlan("kill-host", 0, hostNode)); err != nil {
		t.Fatal(err)
	}
	campus.Run(10 * time.Second)
	localFailover := false
	for _, ev := range log.Events() {
		ce, ok := ev.(CellEvent)
		if !ok || ce.Cell != "east" {
			continue
		}
		if fo, isFO := ce.Inner.(FailoverEvent); isFO && fo.Task == "w-loop" && fo.From == hostNode {
			localFailover = true
		}
	}
	if !localFailover {
		t.Fatal("no in-cell FailoverEvent for the adopted foreign task")
	}
	migsAfter := log.Count(func(ev Event) bool {
		_, isMig := ev.(InterCellMigrationEvent)
		return isMig
	})
	if migsAfter != migsBefore {
		t.Fatalf("adoption did not keep fail-over local: migrations %d -> %d", migsBefore, migsAfter)
	}
	p2 := campus.TaskPlacements()["west/w-loop"]
	if p2.Cell != "east" || p2.Node == hostNode {
		t.Fatalf("placement after local fail-over = %+v, want a new east node", p2)
	}
	// The promoted backup keeps the loop actuating.
	resumed := 0
	for _, ev := range log.Events() {
		ce, ok := ev.(CellEvent)
		if !ok || ce.Cell != "east" || ce.When() <= 15*time.Second+time.Millisecond {
			continue
		}
		if act, isAct := ce.Inner.(ActuationEvent); isAct && act.Task == "w-loop" {
			resumed++
		}
	}
	if resumed == 0 {
		t.Fatal("adopted task stopped actuating after the local fail-over")
	}
}

// TestEscalationBackToOriginIsHomecoming: a policy may escalate a
// stranded foreign task straight back to its recovered origin cell
// (affinity does, by design). The delivery must land it as a native
// placement again — not a "foreign" task in its own home, which would
// make the rebalancer issue origin-to-origin backbone sends forever.
func TestEscalationBackToOriginIsHomecoming(t *testing.T) {
	unit := func(name, prefix string, nodes int) CellSpec {
		return CellSpec{
			Name:    name,
			Options: []CellOption{WithNodeCount(nodes), WithSlotsPerNode(3), WithPER(0)},
			VC: VCConfig{
				Name: name, Head: 2, Gateway: 1,
				Tasks: []TaskSpec{{
					ID: prefix + "-loop", SensorPort: 0, ActuatorPort: 10,
					Period: 250 * time.Millisecond, WCET: 5 * time.Millisecond,
					Candidates:   []NodeID{3, 4},
					DeviationTol: 5, DeviationWindow: 4, SilenceWindow: 8,
					MakeLogic: campusPID,
				}},
				DormantAfter: 5 * time.Second,
			},
			Feed: &FeedSpec{Source: 1, Period: 250 * time.Millisecond,
				Sample: func() []SensorReading { return []SensorReading{{Port: 0, Value: 50}} }},
		}
	}
	campus, err := NewCampus(CampusConfig{
		Seed:      1,
		Placement: AffinityPolicy{},
		Rebalance: HomewardRebalance{},
	}, unit("west", "w", 6), unit("east", "e", 6))
	if err != nil {
		t.Fatal(err)
	}
	defer campus.Stop()
	// West dies at 5s and recovers at 15s; the loop escalates into east.
	if err := campus.ApplyFaultPlan("west",
		OutageWindowPlan("west-outage", 5*time.Second, 15*time.Second, campus.Cell("west").Members()...)); err != nil {
		t.Fatal(err)
	}
	campus.Run(12 * time.Second)
	p := campus.TaskPlacements()["west/w-loop"]
	if !p.Foreign || p.Cell != "east" {
		t.Fatalf("placement before recovery = %+v, want foreign in east", p)
	}
	// Strand the foreign task in east (host, adopted backup and head all
	// die) right after west recovers: affinity escalates it back home.
	if err := campus.ApplyFaultPlan("east",
		KillNodesPlan("kill-east-hosts", 4*time.Second, 2, 3, 4, 5, 6)); err != nil {
		t.Fatal(err)
	}
	campus.Run(10 * time.Second)
	p = campus.TaskPlacements()["west/w-loop"]
	if p.Foreign || p.Cell != "west" {
		t.Fatalf("placement after homecoming escalation = %+v, want native in west", p)
	}
	failedBefore := campus.Backbone().Stats().Failed
	campus.Run(10 * time.Second)
	if failed := campus.Backbone().Stats().Failed; failed != failedBefore {
		t.Fatalf("backbone failures grew %d -> %d after homecoming (origin-to-origin sends?)",
			failedBefore, failed)
	}
}

// TestEscalationOutOfHostRetiresStaleCopies: when an adopted foreign
// task is escalated OUT of its hosting cell (host master and head die
// while the adopted backup survives), the departed cell's replicas and
// head adoption must be retired — otherwise the cell would re-promote
// its stale backup on recovery and run a second master forever.
func TestEscalationOutOfHostRetiresStaleCopies(t *testing.T) {
	unit := func(name, prefix string) CellSpec {
		return CellSpec{
			Name:    name,
			Options: []CellOption{WithNodeCount(6), WithSlotsPerNode(3), WithPER(0)},
			VC: VCConfig{
				Name: name, Head: 2, Gateway: 1,
				Tasks: []TaskSpec{{
					ID: prefix + "-loop", SensorPort: 0, ActuatorPort: 10,
					Period: 250 * time.Millisecond, WCET: 5 * time.Millisecond,
					Candidates:   []NodeID{3, 4},
					DeviationTol: 5, DeviationWindow: 4, SilenceWindow: 8,
					MakeLogic: campusPID,
				}},
				DormantAfter: 5 * time.Second,
			},
			Feed: &FeedSpec{Source: 1, Period: 250 * time.Millisecond,
				Sample: func() []SensorReading { return []SensorReading{{Port: 0, Value: 50}} }},
		}
	}
	campus, err := NewCampus(CampusConfig{Seed: 1},
		unit("a", "a"), unit("b", "b"), unit("c", "c"))
	if err != nil {
		t.Fatal(err)
	}
	defer campus.Stop()
	log := campus.Events().Log()
	// Cell a dies for good; its loop escalates into a peer (b, the
	// least-loaded tie-break) and is adopted there.
	if err := campus.ApplyFaultPlan("a", KillCellPlan(5*time.Second, campus.Cell("a"))); err != nil {
		t.Fatal(err)
	}
	campus.Run(10 * time.Second)
	p := campus.TaskPlacements()["a/a-loop"]
	if !p.Foreign || p.Cell != "b" {
		t.Fatalf("placement after first escalation = %+v, want foreign in b", p)
	}
	// Kill b's head and the hosting master, but not the adopted backup:
	// head-down strands the task and it escalates again (to c). Recover
	// b afterward — its stale backup copy must stay retired.
	if err := campus.ApplyFaultPlan("b",
		OutageWindowPlan("b-head-and-host", 0, 10*time.Second, 2, p.Node)); err != nil {
		t.Fatal(err)
	}
	campus.Run(10 * time.Second)
	p = campus.TaskPlacements()["a/a-loop"]
	if !p.Foreign || p.Cell != "c" {
		t.Fatalf("placement after second escalation = %+v, want foreign in c", p)
	}
	reEscalatedAt := campus.Now()
	campus.Run(15 * time.Second)
	// After b recovered, no b-hosted copy of the task may actuate or be
	// promoted: cell c's master is the only one.
	for _, ev := range log.Events() {
		ce, ok := ev.(CellEvent)
		if !ok || ce.Cell != "b" || ce.When() <= reEscalatedAt {
			continue
		}
		switch e := ce.Inner.(type) {
		case ActuationEvent:
			if e.Task == "a-loop" {
				t.Fatalf("stale copy of a-loop actuated in recovered cell b at %v", e.At)
			}
		case FailoverEvent:
			if e.Task == "a-loop" {
				t.Fatalf("recovered cell b re-promoted retired task a-loop at %v", e.At)
			}
		}
	}
}

// TestPolicyDeterminism is the determinism satellite: same seed + same
// policy reproduces byte-identical campus event streams under CampusBQP
// with multi-hop routing (including lossy retransmissions), and the
// parallel Runner matches serial execution bit for bit.
func TestPolicyDeterminism(t *testing.T) {
	run := func() []string {
		exp, err := BuildScenario(RunSpec{Scenario: ScenarioRefineryRing, Seed: 5, Policy: PolicyCampusBQP})
		if err != nil {
			t.Fatal(err)
		}
		defer exp.Cleanup()
		if err := exp.Campus.ApplyFaultPlan("unit-a",
			RefineryOutagePlan(10*time.Second, 22*time.Second)); err != nil {
			t.Fatal(err)
		}
		log := exp.Campus.Events().Log()
		exp.Campus.Run(30 * time.Second)
		return log.Strings()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no campus events recorded")
	}
	if len(a) != len(b) {
		t.Fatalf("same-seed streams differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("campus event %d differs:\n  run1: %s\n  run2: %s", i, a[i], b[i])
		}
	}

	plan := RefineryOutagePlan(10*time.Second, 22*time.Second)
	var specs []RunSpec
	for _, pol := range []string{PolicyLeastLoaded, PolicyCampusBQP, PolicyAffinity} {
		for _, seed := range []uint64{2, 3} {
			specs = append(specs, RunSpec{
				Scenario: ScenarioRefineryRing, Seed: seed, Horizon: 30 * time.Second,
				Faults: plan, FaultCell: "unit-a", Policy: pol,
			})
		}
	}
	serial := (&Runner{Workers: 1}).Run(specs)
	parallel := (&Runner{Workers: 4}).Run(specs)
	for i := range specs {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("%s: serial err=%v parallel err=%v",
				specs[i].Label(), serial[i].Err, parallel[i].Err)
		}
		if !reflect.DeepEqual(serial[i].Metrics, parallel[i].Metrics) {
			t.Fatalf("%s: metrics diverge:\n  serial:   %v\n  parallel: %v",
				specs[i].Label(), serial[i].Metrics, parallel[i].Metrics)
		}
	}
}

// TestPoliciesIgnorePerNodeLoads: the per-node load snapshot added to
// CellCondition is advisory for custom policies — every built-in policy
// must pick the same cell whether or not it is populated, so existing
// scenarios are byte-identical before and after the change.
func TestPoliciesIgnorePerNodeLoads(t *testing.T) {
	base := PlacementRequest{
		Task:   TaskSpec{ID: "t", Period: 250 * time.Millisecond, WCET: 5 * time.Millisecond},
		Origin: 0,
		From:   0,
		Cells: []CellCondition{
			{Index: 1, Name: "b", Placed: 4, EligibleHosts: 3, Utilization: 0.2, Capacity: 5, Hops: 1},
			{Index: 2, Name: "c", Placed: 2, EligibleHosts: 2, Utilization: 0.1, Capacity: 5, Hops: 2},
			{Index: 3, Name: "d", Placed: 6, EligibleHosts: 4, Utilization: 0.3, Capacity: 5, Hops: 1, Origin: true},
		},
		Displaced: []DisplacedTask{{Key: "x/t2", Cell: 1, Util: 0.1}},
	}
	loaded := base
	loaded.Cells = append([]CellCondition(nil), base.Cells...)
	for i := range loaded.Cells {
		loaded.Cells[i].Nodes = []NodeLoad{
			{Node: 2, Replicas: 9, Eligible: false, Head: true},
			{Node: 3, Replicas: 0, Eligible: true},
		}
	}
	for _, name := range PlacementPolicies() {
		policy, err := NewPlacementPolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		gotBare, okBare := policy.PickCell(base)
		gotLoaded, okLoaded := policy.PickCell(loaded)
		if gotBare != gotLoaded || okBare != okLoaded {
			t.Fatalf("%s: pick (%d,%v) with node loads vs (%d,%v) without",
				name, gotLoaded, okLoaded, gotBare, okBare)
		}
	}
}

// TestCellConditionExposesPerNodeLoad: the coordinator's snapshot lists
// every live runtime with its replica count, head flag and eligibility
// for the requested task.
func TestCellConditionExposesPerNodeLoad(t *testing.T) {
	campus, err := NewCampus(CampusConfig{Seed: 1},
		smallUnit("n", "n"), smallUnit("s", "s"))
	if err != nil {
		t.Fatal(err)
	}
	defer campus.Stop()
	campus.Run(2 * time.Second)
	count, util := campus.loads()
	cc := campus.cellCondition(1, 0, 0, "s-loop", count, util)
	if len(cc.Nodes) != 5 {
		t.Fatalf("node loads = %+v, want the 5 live runtimes (gateway has none)", cc.Nodes)
	}
	byID := make(map[NodeID]NodeLoad, len(cc.Nodes))
	for _, nl := range cc.Nodes {
		byID[nl.Node] = nl
	}
	if !byID[2].Head || byID[3].Head {
		t.Fatalf("head flag wrong: %+v", cc.Nodes)
	}
	// Candidates 3 and 4 hold s-loop replicas: loaded and ineligible.
	for _, id := range []NodeID{3, 4} {
		if byID[id].Eligible || byID[id].Replicas != 1 {
			t.Fatalf("node %d = %+v, want 1 replica and ineligible for s-loop", id, byID[id])
		}
	}
	for _, id := range []NodeID{2, 5, 6} {
		if !byID[id].Eligible || byID[id].Replicas != 0 {
			t.Fatalf("node %d = %+v, want empty and eligible", id, byID[id])
		}
	}
}
