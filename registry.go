package evm

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// RunSpec names one point of an experiment grid: a registered scenario,
// a seed, a fault plan and a horizon. Specs are plain data — build them
// by hand or with SpecGrid and hand them to a Runner.
type RunSpec struct {
	Scenario string
	Seed     uint64
	// Horizon bounds the run in virtual time (zero = the scenario's
	// default).
	Horizon time.Duration
	// Faults is applied to the scenario's cell before the run starts.
	Faults FaultPlan
	// FaultCell names the cell the plan targets in campus scenarios
	// ("" = the first cell). Ignored by single-cell scenarios.
	FaultCell string
	// Policy names the placement policy campus scenarios resolve through
	// NewPlacementPolicy ("" = the least-loaded default). Ignored by
	// single-cell scenarios.
	Policy string
}

// Label renders the spec as a stable one-line identifier.
func (s RunSpec) Label() string {
	label := fmt.Sprintf("%s/seed=%d/plan=%s", s.Scenario, s.Seed, s.Faults.Label())
	if s.FaultCell != "" {
		label += "@" + s.FaultCell
	}
	if s.Policy != "" {
		label += "/policy=" + s.Policy
	}
	return label
}

// Experiment is one runnable scenario instance, produced by a
// ScenarioBuilder. The Runner applies the spec's fault plan, advances the
// cell to the horizon, collects Metrics and calls Cleanup.
type Experiment struct {
	// Cell is the instrumented cell the run advances. Leave nil for
	// campus scenarios, which set Campus instead.
	Cell *Cell
	// Campus is the instrumented campus for federation scenarios; the
	// Runner drives its shared engine and observes the merged campus
	// event stream.
	Campus *Campus
	// Policy records the placement policy the builder resolved for a
	// campus scenario (display/aggregation aid; "" for single-cell
	// scenarios or the default policy).
	Policy string
	// DefaultHorizon is used when the spec leaves Horizon zero.
	DefaultHorizon time.Duration
	// Metrics extracts the per-run measurements after the horizon.
	Metrics func() map[string]float64
	// QoS, when non-nil, evaluates the component's control quality after
	// the horizon (EvaluateQoS over the deployed VC). The Runner folds
	// the report into every run's metrics as qos_coverage /
	// qos_redundancy_mean — the shared signal for OTA health-window
	// gates and evmd telemetry dashboards.
	QoS func() QoSReport
	// Cleanup releases the experiment (stop feeds, runtimes); may be nil.
	Cleanup func()
}

// ScenarioBuilder constructs a fresh Experiment for one spec. Builders
// must derive every random stream from spec.Seed so equal specs reproduce
// equal runs, and must not share mutable state between invocations — the
// Runner calls builders from several goroutines.
type ScenarioBuilder func(spec RunSpec) (*Experiment, error)

var scenarioRegistry = struct {
	sync.RWMutex
	builders map[string]ScenarioBuilder
}{builders: make(map[string]ScenarioBuilder)}

// RegisterScenario adds a named scenario to the global registry.
// Registering a duplicate name or a nil builder is an error.
func RegisterScenario(name string, build ScenarioBuilder) error {
	if name == "" || build == nil {
		return fmt.Errorf("evm: scenario needs a name and a builder")
	}
	scenarioRegistry.Lock()
	defer scenarioRegistry.Unlock()
	if _, dup := scenarioRegistry.builders[name]; dup {
		return fmt.Errorf("evm: scenario %q already registered", name)
	}
	scenarioRegistry.builders[name] = build
	return nil
}

// MustRegisterScenario is RegisterScenario that panics on error — for
// package init blocks.
func MustRegisterScenario(name string, build ScenarioBuilder) {
	if err := RegisterScenario(name, build); err != nil {
		panic(err)
	}
}

// Scenarios lists the registered scenario names, sorted.
func Scenarios() []string {
	scenarioRegistry.RLock()
	defer scenarioRegistry.RUnlock()
	out := make([]string, 0, len(scenarioRegistry.builders))
	for name := range scenarioRegistry.builders {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// BuildScenario instantiates the spec's scenario from the registry.
func BuildScenario(spec RunSpec) (*Experiment, error) {
	scenarioRegistry.RLock()
	build := scenarioRegistry.builders[spec.Scenario]
	scenarioRegistry.RUnlock()
	if build == nil {
		return nil, fmt.Errorf("evm: unknown scenario %q (registered: %v)", spec.Scenario, Scenarios())
	}
	exp, err := build(spec)
	if err != nil {
		return nil, err
	}
	if exp == nil || (exp.Cell == nil && exp.Campus == nil) {
		return nil, fmt.Errorf("evm: scenario %q built no cell or campus", spec.Scenario)
	}
	return exp, nil
}
