package evm

import (
	"time"
)

// ScenarioPipeline is the multi-hop line-cell scenario: five stations
// along a pipeline share a TDMA line schedule (rtlink.BuildLineSchedule)
// in which each slot is heard only by its line neighbors. Sensor
// snapshots are unicast from the head-end gateway and relayed station by
// station to the booster controllers at the far end; actuations ride the
// same static line routes back to the gateway. Crashing the far-end
// primary exercises fail-over across the line: the backup — one station
// closer to the gateway — detects the silence, reports to the adjacent
// head, takes over, and its actuations keep arriving at the gateway
// through the surviving relays.
const ScenarioPipeline = "pipeline"

// Pipeline station IDs in line order: gateway at the processing plant,
// a relay station, the segment head, then the backup and primary booster
// controllers toward the wellhead.
const (
	PipeGateway NodeID = 1
	PipeRelay   NodeID = 2
	PipeHead    NodeID = 3
	PipeBackup  NodeID = 4
	PipePrimary NodeID = 5
)

// PipelineTaskID names the booster-pressure loop.
const PipelineTaskID = "booster-loop"

func init() {
	MustRegisterScenario(ScenarioPipeline, buildPipelineScenario)
}

// pipelineLine returns the station sequence along the pipeline.
func pipelineLine() []NodeID {
	return []NodeID{PipeGateway, PipeRelay, PipeHead, PipeBackup, PipePrimary}
}

// buildPipelineScenario assembles the line cell, installs the per-hop
// routes and starts the unicast sensor feed toward both controllers.
func buildPipelineScenario(spec RunSpec) (*Experiment, error) {
	line := pipelineLine()
	cell, err := NewCellWith(CellConfig{Seed: spec.Seed},
		WithNodes(line...),
		WithPlacement(Line(3)),
		WithSlotsPerNode(3),
		WithPER(0),
		WithLineSchedule(line...))
	if err != nil {
		return nil, err
	}
	vc := VCConfig{
		Name:    "pipeline",
		Head:    PipeHead,
		Gateway: PipeGateway,
		Tasks: []TaskSpec{{
			ID:              PipelineTaskID,
			SensorPort:      0,
			ActuatorPort:    10,
			Period:          250 * time.Millisecond,
			WCET:            5 * time.Millisecond,
			Candidates:      []NodeID{PipePrimary, PipeBackup},
			DeviationTol:    5,
			DeviationWindow: 4,
			SilenceWindow:   8,
			MakeLogic:       campusPID,
		}},
		DormantAfter: 5 * time.Second,
	}
	if err := cell.Deploy(vc); err != nil {
		return nil, err
	}
	if err := cell.InstallLineRoutes(line...); err != nil {
		return nil, err
	}
	feed, err := cell.StartSensorFeedTo(PipeGateway, 250*time.Millisecond,
		func() []SensorReading { return []SensorReading{{Port: 0, Value: 50}} },
		PipePrimary, PipeBackup)
	if err != nil {
		return nil, err
	}
	return &Experiment{
		Cell:           cell,
		DefaultHorizon: 30 * time.Second,
		Metrics: func() map[string]float64 {
			relayed := 0
			for _, id := range line {
				relayed += cell.Network().Link(id).Stats().FragsRelayed
			}
			duty := 0.0
			sched := cell.Network().Schedule()
			for _, id := range line {
				duty += sched.ActiveSlotFraction(id, cell.Network().Config())
			}
			duty /= float64(len(line))
			active := 0.0
			if id, ok := cell.Node(PipeHead).Head().ActiveNode(PipelineTaskID); ok {
				active = float64(id)
			}
			return map[string]float64{
				"relayed_frags":     float64(relayed),
				"line_duty":         duty,
				"active_controller": active,
			}
		},
		Cleanup: func() {
			feed.Stop()
			cell.Stop()
		},
	}, nil
}

// PipelinePrimaryCrashPlan crashes the far-end primary controller at
// offset at — the line fail-over exercise.
func PipelinePrimaryCrashPlan(at time.Duration) FaultPlan {
	return FaultPlan{
		Name:  "crash-pipe-primary",
		Steps: []FaultStep{{At: at, CrashNode: PipePrimary}},
	}
}
