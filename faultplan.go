package evm

import (
	"fmt"
	"time"
)

// ComputeFault forces a node's replica of a task to emit a fixed wrong
// output — the paper's Fig. 6 byzantine failure ("75% instead of
// 11.48%"). A positive For clears the fault again after that long.
type ComputeFault struct {
	Node   NodeID
	Task   string
	Output float64
	For    time.Duration
}

// TaskRef names one node's replica of a task.
type TaskRef struct {
	Node NodeID
	Task string
}

// PERBurst forces a fixed packet error rate on every link for a window,
// then restores the previous channel model — a declarative form of the
// loss sweeps in the fail-over experiments.
type PERBurst struct {
	PER float64
	For time.Duration
}

// BatteryDrain instantly consumes a fraction of a node's battery
// capacity (internal/radio/energy.go). Draining a primary below the 5%
// threshold exercises the head's proactive energy fail-over (§3.1.1
// op 5): the next health bundle reports the low charge and the head
// migrates the node's duties away.
type BatteryDrain struct {
	Node NodeID
	// Fraction of total capacity to consume, in (0, 1].
	Fraction float64
}

// ClockDrift sets a node's oscillator drift in parts per million. The
// drift accumulates between AM sync pulses, degrading the node's slot
// alignment the longer it goes unsynchronized.
type ClockDrift struct {
	Node NodeID
	PPM  float64
}

// LinkRef names one backbone link by its cell pair (order irrelevant).
type LinkRef struct {
	A, B string
}

// FaultStep is one timed entry of a FaultPlan. At is relative to the
// moment the plan is applied. Any combination of the action fields may be
// set; they execute in declaration order and each emits a FaultEvent on
// the cell's event bus. LinkDown/LinkUp are campus-level actions: they
// target the federation backbone rather than a cell, so plans containing
// them must be applied through Campus.ApplyFaultPlan.
type FaultStep struct {
	At time.Duration
	// CrashNode fails the node's radio (silent crash). Zero = no crash.
	CrashNode NodeID
	// RecoverNode brings a crashed node's radio back. Zero = none.
	RecoverNode NodeID
	// ComputeFault injects a wrong-output fault on a deployed replica.
	ComputeFault *ComputeFault
	// ClearCompute removes a previously injected compute fault.
	ClearCompute *TaskRef
	// PERBurst forces cell-wide packet loss for a window.
	PERBurst *PERBurst
	// BatteryDrain consumes part of a node's battery instantly.
	BatteryDrain *BatteryDrain
	// ClockDrift sets a node's oscillator drift.
	ClockDrift *ClockDrift
	// LinkDown severs the backbone link between two named cells; the
	// backbone reroutes remaining traffic and drops in-flight frames
	// (campus plans only).
	LinkDown *LinkRef
	// LinkUp restores a previously severed backbone link (campus plans
	// only).
	LinkUp *LinkRef
}

// cellActions reports whether the step carries any cell-level action
// (everything but the campus-level link fields).
func (st FaultStep) cellActions() bool {
	return st.CrashNode != 0 || st.RecoverNode != 0 || st.ComputeFault != nil ||
		st.ClearCompute != nil || st.PERBurst != nil || st.BatteryDrain != nil ||
		st.ClockDrift != nil
}

// linkActions reports whether the step carries a backbone link action.
func (st FaultStep) linkActions() bool { return st.LinkDown != nil || st.LinkUp != nil }

// FaultPlan is a declarative fault-injection schedule applied to a cell.
// Plans are plain data: they can be stored, swept in experiment grids and
// crossed with scenarios and seeds by the Runner.
type FaultPlan struct {
	// Name labels the plan in run results ("" reads as "none").
	Name  string
	Steps []FaultStep
}

// Label returns the plan name, or "none" for an unnamed empty plan.
func (p FaultPlan) Label() string {
	if p.Name != "" {
		return p.Name
	}
	if len(p.Steps) == 0 {
		return "none"
	}
	return fmt.Sprintf("%d-steps", len(p.Steps))
}

// validate checks the plan against the cell's current membership.
func (p FaultPlan) validate(c *Cell) error {
	for i, st := range p.Steps {
		if st.At < 0 {
			return fmt.Errorf("evm: fault step %d at negative offset %v", i, st.At)
		}
		for _, id := range []NodeID{st.CrashNode, st.RecoverNode} {
			if id != 0 && c.med.Radio(id) == nil {
				return fmt.Errorf("evm: fault step %d names unknown node %v", i, id)
			}
		}
		if cf := st.ComputeFault; cf != nil {
			if c.nodes[cf.Node] == nil {
				return fmt.Errorf("evm: fault step %d compute fault on undeployed node %v", i, cf.Node)
			}
			if cf.For < 0 {
				return fmt.Errorf("evm: fault step %d negative compute-fault window", i)
			}
		}
		if cl := st.ClearCompute; cl != nil && c.nodes[cl.Node] == nil {
			return fmt.Errorf("evm: fault step %d clears fault on undeployed node %v", i, cl.Node)
		}
		if b := st.PERBurst; b != nil {
			if b.PER < 0 || b.PER > 1 {
				return fmt.Errorf("evm: fault step %d PER %g outside [0,1]", i, b.PER)
			}
			if b.For <= 0 {
				return fmt.Errorf("evm: fault step %d PER burst needs a positive window", i)
			}
		}
		if bd := st.BatteryDrain; bd != nil {
			if c.med.Radio(bd.Node) == nil {
				return fmt.Errorf("evm: fault step %d drains unknown node %v", i, bd.Node)
			}
			if bd.Fraction <= 0 || bd.Fraction > 1 {
				return fmt.Errorf("evm: fault step %d drain fraction %g outside (0,1]", i, bd.Fraction)
			}
		}
		if cd := st.ClockDrift; cd != nil && c.med.Radio(cd.Node) == nil {
			return fmt.Errorf("evm: fault step %d drifts unknown node %v", i, cd.Node)
		}
		if st.linkActions() {
			return fmt.Errorf("evm: fault step %d targets a backbone link; apply the plan through Campus.ApplyFaultPlan", i)
		}
	}
	return nil
}

// ApplyFaultPlan schedules every step of the plan on the cell's virtual
// timeline, offsets measured from now. It subsumes the imperative
// InjectComputeFault / Radio().Fail() calls: the same faults become
// declarative data, and each executed action is published as a FaultEvent.
func (c *Cell) ApplyFaultPlan(p FaultPlan) error {
	if err := p.validate(c); err != nil {
		return err
	}
	for _, st := range p.Steps {
		step := st
		c.eng.After(step.At, func() { c.runFaultStep(step) })
	}
	return nil
}

func (c *Cell) runFaultStep(st FaultStep) {
	if st.CrashNode != 0 {
		if r := c.med.Radio(st.CrashNode); r != nil {
			r.Fail()
			c.bus.publish(FaultEvent{At: c.eng.Now(), Kind: FaultCrash, Node: st.CrashNode})
		}
	}
	if st.RecoverNode != 0 {
		if r := c.med.Radio(st.RecoverNode); r != nil {
			r.Recover()
			c.bus.publish(FaultEvent{At: c.eng.Now(), Kind: FaultRecover, Node: st.RecoverNode})
		}
	}
	if cf := st.ComputeFault; cf != nil {
		if n := c.nodes[cf.Node]; n != nil {
			n.InjectComputeFault(cf.Task, cf.Output)
			c.bus.publish(FaultEvent{At: c.eng.Now(), Kind: FaultCompute, Node: cf.Node, Task: cf.Task, Value: cf.Output})
			if cf.For > 0 {
				c.eng.After(cf.For, func() {
					n.ClearComputeFault(cf.Task)
					c.bus.publish(FaultEvent{At: c.eng.Now(), Kind: FaultComputeClear, Node: cf.Node, Task: cf.Task})
				})
			}
		}
	}
	if cl := st.ClearCompute; cl != nil {
		if n := c.nodes[cl.Node]; n != nil {
			n.ClearComputeFault(cl.Task)
			c.bus.publish(FaultEvent{At: c.eng.Now(), Kind: FaultComputeClear, Node: cl.Node, Task: cl.Task})
		}
	}
	if bd := st.BatteryDrain; bd != nil {
		if r := c.med.Radio(bd.Node); r != nil && r.Battery() != nil {
			r.Battery().ConsumeFraction(bd.Fraction)
			c.bus.publish(FaultEvent{At: c.eng.Now(), Kind: FaultBatteryDrain, Node: bd.Node, Value: bd.Fraction})
		}
	}
	if cd := st.ClockDrift; cd != nil {
		if r := c.med.Radio(cd.Node); r != nil {
			r.SetDriftPPM(cd.PPM)
			c.bus.publish(FaultEvent{At: c.eng.Now(), Kind: FaultClockDrift, Node: cd.Node, Value: cd.PPM})
		}
	}
	if b := st.PERBurst; b != nil {
		// Restore whatever channel was in force when the burst started —
		// a forced rate set through any path (WithPER, Medium.ForcePER)
		// or the distance model (negative).
		prev := c.med.ForcedPER()
		c.med.ForcePER(b.PER)
		c.bus.publish(FaultEvent{At: c.eng.Now(), Kind: FaultPERBurst, Value: b.PER})
		c.eng.After(b.For, func() {
			c.med.ForcePER(prev)
			restored := prev
			if restored < 0 {
				restored = 0
			}
			c.bus.publish(FaultEvent{At: c.eng.Now(), Kind: FaultPERRestore, Value: restored})
		})
	}
}
