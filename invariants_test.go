package evm

import (
	"testing"
	"time"
)

// replayScenario builds one grid point, records its full event stream,
// runs it to a bounded horizon and returns the recorded events.
func replayScenario(t *testing.T, spec RunSpec) []Event {
	t.Helper()
	exp, err := BuildScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Cleanup()
	var bus *Bus
	if exp.Campus != nil {
		bus = exp.Campus.Events()
	} else {
		bus = exp.Cell.Events()
	}
	log := bus.Log()
	defer log.Close()
	if len(spec.Faults.Steps) > 0 {
		if exp.Campus != nil {
			err = exp.Campus.ApplyFaultPlan(spec.FaultCell, spec.Faults)
		} else {
			err = exp.Cell.ApplyFaultPlan(spec.Faults)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	horizon := spec.Horizon
	if horizon <= 0 {
		horizon = exp.DefaultHorizon
	}
	if horizon > 45*time.Second {
		horizon = 45 * time.Second
	}
	if exp.Campus != nil {
		exp.Campus.Run(horizon)
	} else {
		exp.Cell.Run(horizon)
	}
	return log.Events()
}

// TestInvariantsAcrossScenarioGrid replays every registered scenario —
// fault-free and under a crash plan, across seeds — through the built-in
// invariant checkers: single-master-per-task,
// no-actuation-from-demoted-replica and route-monotonicity must hold on
// every stream. The crash plan kills node 2 (a head or a primary,
// depending on the scenario), exercising arbitration on single cells and
// head-down handling on campuses.
func TestInvariantsAcrossScenarioGrid(t *testing.T) {
	crash := FaultPlan{
		Name:  "crash-2",
		Steps: []FaultStep{{At: 10 * time.Second, CrashNode: 2}},
	}
	for _, sc := range Scenarios() {
		for _, seed := range []uint64{1, 2} {
			for _, plan := range []FaultPlan{{}, crash} {
				spec := RunSpec{Scenario: sc, Seed: seed, Faults: plan}
				t.Run(spec.Label(), func(t *testing.T) {
					t.Parallel()
					events := replayScenario(t, spec)
					if len(events) == 0 {
						t.Fatal("scenario produced no events")
					}
					checkers := append(DefaultInvariants(), TimingInvariants(0, 0)...)
					for _, v := range CheckEvents(events, checkers...) {
						t.Errorf("violation: %s", v)
					}
				})
			}
		}
	}
}

// TestInvariantCheckersDetectViolations feeds hand-built streams that
// break each invariant, proving the checkers are not vacuous.
func TestInvariantCheckersDetectViolations(t *testing.T) {
	sec := func(s int) time.Duration { return time.Duration(s) * time.Second }

	t.Run("single-master", func(t *testing.T) {
		events := []Event{
			ActuationEvent{At: sec(1), Node: 3, Task: "loop"},
			FailoverEvent{At: sec(2), Task: "loop", From: 3, To: 4},
			ActuationEvent{At: sec(3), Node: 4, Task: "loop"},
			// 3 was demoted at 2s; actuating at 10s is a second master.
			ActuationEvent{At: sec(10), Node: 3, Task: "loop"},
		}
		vs := CheckEvents(events, NewSingleMasterInvariant(0))
		if len(vs) != 1 {
			t.Fatalf("violations = %v, want exactly the stale master", vs)
		}
	})

	t.Run("single-master-grace", func(t *testing.T) {
		events := []Event{
			ActuationEvent{At: sec(1), Node: 3, Task: "loop"},
			FailoverEvent{At: sec(2), Task: "loop", From: 3, To: 4},
			// In-flight actuation right after the switch: not a violation.
			ActuationEvent{At: sec(2) + 100*time.Millisecond, Node: 3, Task: "loop"},
		}
		if vs := CheckEvents(events, NewSingleMasterInvariant(0)); len(vs) != 0 {
			t.Fatalf("grace-window actuation flagged: %v", vs)
		}
	})

	t.Run("recovered-stale-replica-grace", func(t *testing.T) {
		events := []Event{
			CellEvent{Cell: "west", Inner: ActuationEvent{At: sec(1), Node: 3, Task: "loop"}},
			InterCellMigrationEvent{At: sec(5), Task: "loop", FromCell: "west", ToCell: "east", From: 3, To: 7},
			// Radio back at 20s: one demotion round-trip is allowed...
			CellEvent{Cell: "west", Inner: FaultEvent{At: sec(20), Kind: FaultRecover, Node: 3}},
			CellEvent{Cell: "west", Inner: ActuationEvent{At: sec(20) + 300*time.Millisecond, Node: 3, Task: "loop"}},
			// ...but persisting past the grace window is split-brain.
			CellEvent{Cell: "west", Inner: ActuationEvent{At: sec(25), Node: 3, Task: "loop"}},
		}
		vs := CheckEvents(events, NewSingleMasterInvariant(0), NewDemotedSilenceInvariant(0))
		if len(vs) != 2 {
			t.Fatalf("violations = %v, want one per checker for the 25s actuation", vs)
		}
		for _, v := range vs {
			if v.At != sec(25) {
				t.Fatalf("violation at %v, want the post-grace actuation only", v.At)
			}
		}
	})

	t.Run("route-monotonicity", func(t *testing.T) {
		events := []Event{
			BackboneRouteEvent{At: sec(1), From: "a", To: "c", Path: []string{"a", "b", "c"}},
			BackboneRouteEvent{At: sec(2), From: "a", To: "c", Path: []string{"a", "d", "c"}},
		}
		if vs := CheckEvents(events, NewRouteMonotonicityInvariant()); len(vs) != 1 {
			t.Fatalf("violations = %v, want the unexplained reroute", vs)
		}
		// The same change across a link fault is legitimate.
		events = []Event{
			BackboneRouteEvent{At: sec(1), From: "a", To: "c", Path: []string{"a", "b", "c"}},
			BackboneLinkEvent{At: sec(2), A: "a", B: "b", Up: false},
			BackboneRouteEvent{At: sec(3), From: "a", To: "c", Path: []string{"a", "d", "c"}, Reroute: true},
		}
		if vs := CheckEvents(events, NewRouteMonotonicityInvariant()); len(vs) != 0 {
			t.Fatalf("reroute across a link fault flagged: %v", vs)
		}
	})

	t.Run("actuation-deadline", func(t *testing.T) {
		events := []Event{
			ActuationEvent{At: sec(1), Node: 3, Task: "loop"},
			ActuationEvent{At: sec(2), Node: 3, Task: "loop"},
			// 18s of silence with nothing on record to excuse it.
			ActuationEvent{At: sec(20), Node: 3, Task: "loop"},
		}
		vs := CheckEvents(events, NewActuationDeadlineInvariant(10*time.Second))
		if len(vs) != 1 {
			t.Fatalf("violations = %v, want exactly the unexplained gap", vs)
		}
		// The same gap across a recorded transition is excused.
		events = []Event{
			ActuationEvent{At: sec(1), Node: 3, Task: "loop"},
			ActuationEvent{At: sec(2), Node: 3, Task: "loop"},
			FaultEvent{At: sec(3), Kind: FaultCrash, Node: 3},
			FailoverEvent{At: sec(5), Task: "loop", From: 3, To: 4},
			ActuationEvent{At: sec(12), Node: 4, Task: "loop"},
		}
		if vs := CheckEvents(events, NewActuationDeadlineInvariant(10*time.Second)); len(vs) != 0 {
			t.Fatalf("excused gap flagged: %v", vs)
		}
		// A rollout's mode/rollback transitions excuse pauses too.
		events = []Event{
			ActuationEvent{At: sec(1), Node: 3, Task: "loop"},
			RollbackEvent{At: sec(2), Task: "loop", FromVersion: 2, ToVersion: 1},
			ActuationEvent{At: sec(11), Node: 3, Task: "loop"},
		}
		if vs := CheckEvents(events, NewActuationDeadlineInvariant(10*time.Second)); len(vs) != 0 {
			t.Fatalf("post-rollback gap flagged: %v", vs)
		}
	})

	t.Run("failover-latency", func(t *testing.T) {
		events := []Event{
			ActuationEvent{At: sec(1), Node: 3, Task: "loop"},
			FaultEvent{At: sec(2), Kind: FaultCrash, Node: 3},
			// Nothing replaces the master; any event past the bound
			// proves the deadline blown.
			JoinEvent{At: sec(20), Node: 9},
		}
		vs := CheckEvents(events, NewFailoverLatencyInvariant(5*time.Second))
		if len(vs) != 1 {
			t.Fatalf("violations = %v, want the blown detection deadline", vs)
		}
		if vs[0].At != sec(7) {
			t.Fatalf("violation at %v, want crash + bound = 7s", vs[0].At)
		}
		// An in-time fail-over disarms the deadline.
		events = []Event{
			ActuationEvent{At: sec(1), Node: 3, Task: "loop"},
			FaultEvent{At: sec(2), Kind: FaultCrash, Node: 3},
			FailoverEvent{At: sec(4), Task: "loop", From: 3, To: 4},
			JoinEvent{At: sec(20), Node: 9},
		}
		if vs := CheckEvents(events, NewFailoverLatencyInvariant(5*time.Second)); len(vs) != 0 {
			t.Fatalf("in-time fail-over flagged: %v", vs)
		}
		// A recovered master disarms it too: no fail-over was due.
		events = []Event{
			ActuationEvent{At: sec(1), Node: 3, Task: "loop"},
			FaultEvent{At: sec(2), Kind: FaultCrash, Node: 3},
			FaultEvent{At: sec(4), Kind: FaultRecover, Node: 3},
			JoinEvent{At: sec(20), Node: 9},
		}
		if vs := CheckEvents(events, NewFailoverLatencyInvariant(5*time.Second)); len(vs) != 0 {
			t.Fatalf("recovered master flagged: %v", vs)
		}
		// A stream that ends mid-deadline proves nothing: no violation.
		events = []Event{
			ActuationEvent{At: sec(1), Node: 3, Task: "loop"},
			FaultEvent{At: sec(2), Kind: FaultCrash, Node: 3},
		}
		if vs := CheckEvents(events, NewFailoverLatencyInvariant(5*time.Second)); len(vs) != 0 {
			t.Fatalf("pending deadline flagged: %v", vs)
		}
	})
}
