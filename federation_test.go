package evm

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// killUnitA crashes every radio of the refinery's unit-a — the
// whole-cell outage of the federation acceptance scenario.
func killUnitA(at time.Duration) FaultPlan {
	return KillNodesPlan("kill-unit-a", at, RefineryMembers()...)
}

// TestCampusFailoverResumesTaskInPeerCell drives the self-contained
// two-cell scenario end to end: west dies wholesale, the coordinator
// reports the overload, ships the task over the backbone, and the loop
// resumes actuating inside east.
func TestCampusFailoverResumesTaskInPeerCell(t *testing.T) {
	exp, err := BuildScenario(RunSpec{Scenario: ScenarioCampusFailover, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Cleanup()
	log := exp.Campus.Events().Log()
	exp.Campus.Run(30 * time.Second)

	var overload *CellOverloadEvent
	var mig *InterCellMigrationEvent
	resumed := 0
	for _, ev := range log.Events() {
		switch e := ev.(type) {
		case CellOverloadEvent:
			if overload == nil {
				overload = &e
			}
		case InterCellMigrationEvent:
			if mig == nil {
				mig = &e
			}
		case CellEvent:
			if act, ok := e.Inner.(ActuationEvent); ok &&
				e.Cell == "east" && act.Task == "w-loop" {
				resumed++
			}
		}
	}
	if overload == nil || overload.Cell != "west" {
		t.Fatalf("no CellOverloadEvent for west (got %+v)", overload)
	}
	if mig == nil {
		t.Fatal("no InterCellMigrationEvent after killing west")
	}
	if mig.Task != "w-loop" || mig.FromCell != "west" || mig.ToCell != "east" {
		t.Fatalf("migration event = %+v, want w-loop west->east", mig)
	}
	if mig.At <= 10*time.Second {
		t.Fatalf("migration at %v, before the 10s outage", mig.At)
	}
	if resumed == 0 {
		t.Fatal("migrated task never actuated in the peer cell")
	}
	placements := exp.Campus.TaskPlacements()
	p, ok := placements["west/w-loop"]
	if !ok || !p.Foreign || p.Cell != "east" {
		t.Fatalf("placement west/w-loop = %+v, want foreign in east", p)
	}
	// The backbone carried at least the one transfer.
	if st := exp.Campus.Backbone().Stats(); st.Delivered < 1 {
		t.Fatalf("backbone stats = %+v", st)
	}
}

// TestRefineryCellKillAcceptance is the PR's acceptance scenario: the
// 4x16 refinery runs under a fault plan that kills every runtime in one
// cell; every control task of that cell resumes in a peer cell, and two
// same-seed runs emit byte-identical campus event logs.
func TestRefineryCellKillAcceptance(t *testing.T) {
	run := func() ([]string, map[string]TaskPlacement, int) {
		exp, err := BuildScenario(RunSpec{Scenario: ScenarioRefinery, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		defer exp.Cleanup()
		if err := exp.Campus.ApplyFaultPlan("unit-a",
			KillCellPlan(10*time.Second, exp.Campus.Cell("unit-a"))); err != nil {
			t.Fatal(err)
		}
		log := exp.Campus.Events().Log()
		exp.Campus.Run(25 * time.Second)
		migs := 0
		for _, ev := range log.Events() {
			if _, ok := ev.(InterCellMigrationEvent); ok {
				migs++
			}
		}
		return log.Strings(), exp.Campus.TaskPlacements(), migs
	}
	a, placements, migs := run()
	if migs != 4 {
		t.Fatalf("inter-cell migrations = %d, want all 4 unit-a loops", migs)
	}
	for i := 0; i < 4; i++ {
		key := "unit-a/a-loop-" + string(rune('0'+i))
		p, ok := placements[key]
		if !ok || !p.Foreign || p.Cell == "unit-a" {
			t.Fatalf("placement %s = %+v, want foreign outside unit-a", key, p)
		}
	}
	// Migrated tasks spread over the three surviving cells.
	hosts := make(map[string]bool)
	for key, p := range placements {
		if p.Foreign {
			hosts[p.Cell] = true
		}
		_ = key
	}
	if len(hosts) < 2 {
		t.Fatalf("all migrated tasks landed in one cell: %v", hosts)
	}

	b, _, _ := run()
	if len(a) != len(b) {
		t.Fatalf("campus event streams differ in length: %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		t.Fatal("no campus events recorded")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("campus event %d differs:\n  run1: %s\n  run2: %s", i, a[i], b[i])
		}
	}
}

// TestFederationRunnerParallelMatchesSerial covers the federation half
// of the Runner guarantee: a campus grid (refinery + campus-failover,
// crossed with seeds and a whole-cell kill plan) produces identical
// metrics AND byte-identical per-run event CSVs whether executed
// serially or across workers.
func TestFederationRunnerParallelMatchesSerial(t *testing.T) {
	specs := []RunSpec{
		{Scenario: ScenarioRefinery, Seed: 1, Horizon: 20 * time.Second,
			Faults: killUnitA(10 * time.Second), FaultCell: "unit-a"},
		{Scenario: ScenarioRefinery, Seed: 2, Horizon: 20 * time.Second,
			Faults: killUnitA(10 * time.Second), FaultCell: "unit-a"},
		{Scenario: ScenarioRefinery, Seed: 1, Horizon: 15 * time.Second},
		{Scenario: ScenarioCampusFailover, Seed: 1, Horizon: 20 * time.Second},
		{Scenario: ScenarioCampusFailover, Seed: 2, Horizon: 20 * time.Second},
	}
	dirSerial := t.TempDir()
	dirParallel := t.TempDir()
	serial := (&Runner{Workers: 1, EventDir: dirSerial}).Run(specs)
	parallel := (&Runner{Workers: 4, EventDir: dirParallel}).Run(specs)
	for i := range specs {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("%s: serial err=%v parallel err=%v",
				specs[i].Label(), serial[i].Err, parallel[i].Err)
		}
		if !reflect.DeepEqual(serial[i].Metrics, parallel[i].Metrics) {
			t.Fatalf("%s: metrics diverge:\n  serial:   %v\n  parallel: %v",
				specs[i].Label(), serial[i].Metrics, parallel[i].Metrics)
		}
	}
	// The killed-cell runs must have escalated across the backbone.
	if serial[0].Metrics[MetricInterCellMigrations] != 4 {
		t.Fatalf("refinery kill run migrated %.0f tasks, want 4",
			serial[0].Metrics[MetricInterCellMigrations])
	}
	if serial[2].Metrics[MetricInterCellMigrations] != 0 {
		t.Fatalf("fault-free refinery run migrated %.0f tasks, want 0",
			serial[2].Metrics[MetricInterCellMigrations])
	}
	// Per-run event CSVs are byte-identical between serial and parallel.
	files, err := filepath.Glob(filepath.Join(dirSerial, "*.csv"))
	if err != nil || len(files) != len(specs) {
		t.Fatalf("event CSVs written = %d (err %v), want %d", len(files), err, len(specs))
	}
	for _, f := range files {
		sb, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := os.ReadFile(filepath.Join(dirParallel, filepath.Base(f)))
		if err != nil {
			t.Fatalf("parallel run missing CSV %s: %v", filepath.Base(f), err)
		}
		if string(sb) != string(pb) {
			t.Fatalf("event CSV %s differs between serial and parallel", filepath.Base(f))
		}
		if len(sb) == 0 {
			t.Fatalf("event CSV %s is empty", filepath.Base(f))
		}
	}
}

// TestBackboneLossRetransmits checks the backbone's loss model: under a
// forced 50% transfer loss the coordinator still lands the migration via
// deterministic retransmissions.
func TestBackboneLossRetransmits(t *testing.T) {
	unit := func(name, prefix string) CellSpec {
		return CellSpec{
			Name:    name,
			Options: []CellOption{WithNodeCount(5), WithSlotsPerNode(3), WithPER(0)},
			VC: VCConfig{
				Name: name, Head: 2, Gateway: 1,
				Tasks: []TaskSpec{{
					ID: prefix + "-loop", SensorPort: 0, ActuatorPort: 10,
					Period: 250 * time.Millisecond, WCET: 5 * time.Millisecond,
					Candidates:   []NodeID{3, 4},
					DeviationTol: 5, DeviationWindow: 4, SilenceWindow: 8,
					MakeLogic: campusPID,
				}},
			},
			Feed: &FeedSpec{Source: 1, Period: 250 * time.Millisecond,
				Sample: func() []SensorReading { return []SensorReading{{Port: 0, Value: 50}} }},
		}
	}
	dropsSeen := false
	for seed := uint64(1); seed <= 8 && !dropsSeen; seed++ {
		campus, err := NewCampus(CampusConfig{
			Seed:     seed,
			Backbone: BackboneConfig{PER: 0.5},
		}, unit("n", "n"), unit("s", "s"))
		if err != nil {
			t.Fatal(err)
		}
		log := campus.Events().Log()
		if err := campus.ApplyFaultPlan("n", KillCellPlan(5*time.Second, campus.Cell("n"))); err != nil {
			t.Fatal(err)
		}
		campus.Run(20 * time.Second)
		migrated := false
		for _, ev := range log.Events() {
			switch e := ev.(type) {
			case BackboneEvent:
				if e.Kind == BackboneDrop {
					dropsSeen = true
				}
			case InterCellMigrationEvent:
				migrated = true
			}
		}
		if !migrated {
			t.Fatalf("seed %d: migration never completed under 50%% backbone loss", seed)
		}
		campus.Stop()
	}
	if !dropsSeen {
		t.Fatal("no backbone drop observed across 8 seeds at 50% loss")
	}
}

// TestCampusRejectsDuplicateTaskIDs: task IDs must be campus-unique or a
// hosting cell's head would demote imported foreign replicas.
func TestCampusRejectsDuplicateTaskIDs(t *testing.T) {
	unit := func(name string) CellSpec {
		return CellSpec{
			Name:    name,
			Options: []CellOption{WithNodeCount(4), WithPER(0)},
			VC: VCConfig{
				Name: name, Head: 2, Gateway: 1,
				Tasks: []TaskSpec{{
					ID: "loop", SensorPort: 0, ActuatorPort: 10,
					Period: 250 * time.Millisecond, WCET: 5 * time.Millisecond,
					Candidates:   []NodeID{3, 4},
					DeviationTol: 5, DeviationWindow: 4, SilenceWindow: 8,
					MakeLogic: campusPID,
				}},
			},
		}
	}
	if _, err := NewCampus(CampusConfig{Seed: 1}, unit("a"), unit("b")); err == nil {
		t.Fatal("duplicate task IDs across cells accepted")
	}
}

// TestSyntheticFeedPublishesActuationEvents covers the per-node
// actuation sink: a cell without a plant gateway still publishes
// ActuationEvent for every accepted actuation.
func TestSyntheticFeedPublishesActuationEvents(t *testing.T) {
	exp, err := BuildScenario(RunSpec{Scenario: ScenarioEightController, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Cleanup()
	log := exp.Cell.Events().Log()
	exp.Cell.Run(10 * time.Second)
	acts := log.Count(func(ev Event) bool { _, ok := ev.(ActuationEvent); return ok })
	if acts == 0 {
		t.Fatal("synthetic-feed scenario published no ActuationEvent")
	}
}

// TestNilRebalancePolicyDemotesStaleMasterOnRecovery is the regression
// test for the permanent dual-master: with no RebalancePolicy a task
// stays foreign after its origin cell recovers, and before the fix the
// recovered origin's stale master resumed actuating alongside the
// foreign copy forever. The coordinator must now demote the stale
// master on recovery even though nothing rebalances.
func TestNilRebalancePolicyDemotesStaleMasterOnRecovery(t *testing.T) {
	campus, err := NewCampus(CampusConfig{Seed: 1},
		smallUnit("west", "w"), smallUnit("east", "e"))
	if err != nil {
		t.Fatal(err)
	}
	defer campus.Stop()
	log := campus.Events().Log()
	outage := OutageWindowPlan("west-outage", 10*time.Second, 18500*time.Millisecond,
		1, 2, 3, 4, 5, 6)
	if err := campus.ApplyFaultPlan("west", outage); err != nil {
		t.Fatal(err)
	}
	campus.Run(35 * time.Second)

	p, ok := campus.TaskPlacements()["west/w-loop"]
	if !ok || !p.Foreign || p.Cell != "east" {
		t.Fatalf("placement = %+v, want foreign in east (nil rebalance keeps it there)", p)
	}
	// The stale west master must be demoted and silent after recovery.
	staleActs, eastActs := 0, 0
	for _, ev := range log.Events() {
		ce, isCell := ev.(CellEvent)
		if !isCell {
			continue
		}
		act, isAct := ce.Inner.(ActuationEvent)
		if !isAct || act.Task != "w-loop" || act.At < 21*time.Second {
			continue
		}
		switch ce.Cell {
		case "west":
			staleActs++
		case "east":
			eastActs++
		}
	}
	if staleActs != 0 {
		t.Fatalf("stale west master actuated %d times after recovery — dual master", staleActs)
	}
	if eastActs == 0 {
		t.Fatal("foreign master stopped actuating after the origin recovered")
	}
	if role := campus.Cell("west").Node(3).Role("w-loop"); role == RoleActive {
		t.Fatal("recovered origin replica still holds the Active role")
	}
	if vs := CheckEvents(log.Events(), DefaultInvariants()...); len(vs) != 0 {
		t.Fatalf("invariants violated: %v", vs)
	}
}

// TestRebalanceAbortKeepsForeignMaster drives the handshake's abort
// path: the prepare leg lands at the recovered origin, but the link is
// severed while the commit leg is in flight — the commit drops, the
// retransmission finds no route, and the handshake aborts leaving the
// foreign master in charge. Once the link heals, the next coordinator
// tick reopens the handshake and the task commits home.
func TestRebalanceAbortKeepsForeignMaster(t *testing.T) {
	campus, err := NewCampus(CampusConfig{
		Seed:      1,
		Rebalance: HomewardRebalance{},
		Links:     []BackboneLink{{A: "n", B: "s"}},
	}, smallUnit("n", "n"), smallUnit("s", "s"))
	if err != nil {
		t.Fatal(err)
	}
	defer campus.Stop()
	log := campus.Events().Log()
	// Recover off-tick at 11.5s so the handshake opens exactly at the
	// 12s tick; the sever at 12.03s catches the commit leg in flight
	// (prepare arrives ~12.020s, commit ~12.040s).
	plan := OutageWindowPlan("n-outage", 5*time.Second, 11500*time.Millisecond,
		1, 2, 3, 4, 5, 6)
	plan.Steps = append(plan.Steps,
		FaultStep{At: 12030 * time.Millisecond, LinkDown: &LinkRef{A: "n", B: "s"}},
		FaultStep{At: 14500 * time.Millisecond, LinkUp: &LinkRef{A: "n", B: "s"}},
	)
	if err := campus.ApplyFaultPlan("n", plan); err != nil {
		t.Fatal(err)
	}
	campus.Run(25 * time.Second)

	var rebalances []InterCellMigrationEvent
	foreignActsDuringAbort := 0
	for _, ev := range log.Events() {
		switch e := ev.(type) {
		case InterCellMigrationEvent:
			if e.Rebalance {
				rebalances = append(rebalances, e)
			}
		case CellEvent:
			if act, ok := e.Inner.(ActuationEvent); ok && e.Cell == "s" && act.Task == "n-loop" &&
				act.At > 12500*time.Millisecond && act.At < 14500*time.Millisecond {
				foreignActsDuringAbort++
			}
		}
	}
	if len(rebalances) != 1 {
		t.Fatalf("rebalance events = %d, want exactly one (the retry after the abort)", len(rebalances))
	}
	if rebalances[0].At < 14500*time.Millisecond {
		t.Fatalf("rebalance committed at %v, before the link healed — the abort path never ran", rebalances[0].At)
	}
	if foreignActsDuringAbort == 0 {
		t.Fatal("foreign master went silent after the aborted handshake")
	}
	if st := campus.Backbone().Stats(); st.Failed < 1 {
		t.Fatalf("backbone stats = %+v, want the dropped commit leg to fail", st)
	}
	// The abort is first-class on the event stream: at least one
	// RebalanceAbortEvent names the task, both cells and a cause.
	aborts := 0
	for _, ev := range log.Events() {
		if ab, ok := ev.(RebalanceAbortEvent); ok {
			aborts++
			if ab.Task != "n-loop" || ab.Host != "s" || ab.Origin != "n" || ab.Reason == "" {
				t.Fatalf("abort event = %+v", ab)
			}
		}
	}
	if aborts == 0 {
		t.Fatal("aborted handshake published no RebalanceAbortEvent")
	}
	p := campus.TaskPlacements()["n/n-loop"]
	if p.Foreign || p.Cell != "n" {
		t.Fatalf("placement = %+v, want home in n after the retried handshake", p)
	}
	if vs := CheckEvents(log.Events(), DefaultInvariants()...); len(vs) != 0 {
		t.Fatalf("invariants violated: %v", vs)
	}
}

// TestRefineryRingSeverAcceptance is the PR's acceptance scenario:
// unit-a's outage escalates its four loops over the ring, the d-a link
// is severed mid-outage, and the recovered unit-a takes every loop back
// through the prepare/commit handshake — with traffic from unit-d forced
// the long way round (a four-cell path), zero dual-master ticks across
// the whole stream, and same-seed byte-identical campus streams.
func TestRefineryRingSeverAcceptance(t *testing.T) {
	run := func() ([]string, []Event, map[string]TaskPlacement) {
		exp, err := BuildScenario(RunSpec{Scenario: ScenarioRefineryRingSever, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		defer exp.Cleanup()
		log := exp.Campus.Events().Log()
		exp.Campus.Run(40 * time.Second)
		return log.Strings(), log.Events(), exp.Campus.TaskPlacements()
	}
	lines, events, placements := run()

	rebalances, linkDowns, linkUps, longWay := 0, 0, 0, 0
	for _, ev := range events {
		switch e := ev.(type) {
		case InterCellMigrationEvent:
			if e.Rebalance {
				rebalances++
			}
		case BackboneLinkEvent:
			if e.Up {
				linkUps++
			} else {
				linkDowns++
			}
		case BackboneRouteEvent:
			if len(e.Path) == 4 {
				longWay++
			}
		}
	}
	if rebalances != 4 {
		t.Fatalf("rebalances = %d, want all 4 unit-a loops home", rebalances)
	}
	if linkDowns != 1 || linkUps != 1 {
		t.Fatalf("link events = %d down / %d up, want 1/1", linkDowns, linkUps)
	}
	if longWay == 0 {
		t.Fatal("no transfer took the long way round the severed ring")
	}
	for key, p := range placements {
		if p.Foreign {
			t.Fatalf("placement %s = %+v, want everything home after rebalance", key, p)
		}
	}
	if vs := CheckEvents(events, DefaultInvariants()...); len(vs) != 0 {
		t.Fatalf("invariants violated: %v", vs)
	}

	again, _, _ := run()
	if len(lines) != len(again) {
		t.Fatalf("same-seed campus streams differ in length: %d vs %d", len(lines), len(again))
	}
	for i := range lines {
		if lines[i] != again[i] {
			t.Fatalf("campus event %d differs:\n  run1: %s\n  run2: %s", i, lines[i], again[i])
		}
	}
}
