// Package evm is the public API of the Embedded Virtual Machine library,
// a reproduction of Mangharam & Pajic, "Embedded Virtual Machines for
// Robust Wireless Control Systems" (ICDCS Workshops 2009).
//
// An EVM groups wireless sensor, actuator and controller nodes into a
// Virtual Component: a logical control entity whose tasks are not bound
// to physical nodes. The runtime replicates control algorithms across
// candidate nodes, passively detects primary faults through health-
// assessment transfers, arbitrates fail-over through the component head,
// migrates task code (attested capsules) and state between nodes, and
// re-optimizes the task assignment at runtime with a BQP solver — all
// over an RT-Link-style TDMA network simulated on virtual time.
//
// Quick start:
//
//	cell, err := evm.NewCell(evm.CellConfig{Seed: 1}, []evm.NodeID{1, 2, 3, 4})
//	// configure a Virtual Component and deploy it:
//	err = cell.Deploy(vcConfig)
//	cell.Run(10 * time.Second)
//
// For the paper's hardware-in-loop gas-plant testbed, see NewGasPlant.
package evm

import (
	"fmt"
	"time"

	"evm/internal/core"
	"evm/internal/radio"
	"evm/internal/rtlink"
	"evm/internal/sim"
	"evm/internal/vm"
	"evm/internal/wire"
)

// Re-exported building blocks. The facade deliberately aliases the
// internal types so downstream code uses one import path.
type (
	// NodeID identifies a node on the wireless medium.
	NodeID = radio.NodeID
	// VCConfig describes a Virtual Component.
	VCConfig = core.VCConfig
	// TaskSpec describes one control task.
	TaskSpec = core.TaskSpec
	// TaskLogic is the executable body of a control task.
	TaskLogic = core.TaskLogic
	// PIDParams configures a PID-backed task logic.
	PIDParams = core.PIDParams
	// PIDLogic is a filtered-PID control law.
	PIDLogic = core.PIDLogic
	// VMLogic is a byte-code control law.
	VMLogic = core.VMLogic
	// Node is the per-node EVM runtime.
	Node = core.Node
	// Head is the Virtual Component arbiter.
	Head = core.Head
	// Role is a controller's role for a task.
	Role = wire.Role
	// Transfer is an object-transfer relation.
	Transfer = core.Transfer
	// QoSReport summarizes component service level.
	QoSReport = core.QoSReport
	// SensorReading is one sensor port sample.
	SensorReading = wire.SensorReading
	// Capsule is an attested code capsule for over-the-air deployment.
	Capsule = vm.Capsule
)

// Role values.
const (
	RoleDormant   = wire.RoleDormant
	RoleBackup    = wire.RoleBackup
	RoleActive    = wire.RoleActive
	RoleIndicator = wire.RoleIndicator
)

// Broadcast addresses every node.
const Broadcast = radio.Broadcast

// NewPIDLogic builds the paper's filtered-PID control law.
func NewPIDLogic(p PIDParams) (*PIDLogic, error) { return core.NewPIDLogic(p) }

// AssembleCapsule assembles EVM byte-code source into an attested capsule
// for the named task (see internal/vm for the instruction set; IN 0 reads
// the task's sensor, OUT 0 writes its actuator, both Q16.16).
func AssembleCapsule(taskID string, version uint8, src string) (Capsule, error) {
	code, err := vm.Assemble(src)
	if err != nil {
		return Capsule{}, err
	}
	return Capsule{TaskID: taskID, Version: version, Code: code}, nil
}

// NewVMLogic instantiates a capsule as task logic.
func NewVMLogic(c Capsule) (*VMLogic, error) { return core.NewVMLogic(c, 0) }

// EvaluateQoS reports component coverage (see the paper's QoS
// degradation claim).
func EvaluateQoS(cfg VCConfig, nodes []*Node) QoSReport {
	return core.EvaluateQoS(cfg, nodes)
}

// CellConfig parameterizes a TDMA cell.
type CellConfig struct {
	// Seed drives every random stream; equal seeds reproduce runs
	// bit-for-bit.
	Seed uint64
	// Radio overrides the medium model (zero value = defaults).
	Radio radio.Config
	// Link overrides the TDMA framing (zero value = defaults).
	Link rtlink.Config
	// SlotsPerNode is the TX slots each node owns per frame (default 2:
	// controllers send an actuation and a health record every cycle).
	SlotsPerNode int
	// PerfectChannel disables stochastic loss (useful for unit tests
	// and deterministic examples).
	PerfectChannel bool
}

func (c CellConfig) withDefaults() CellConfig {
	if c.Radio.BitrateBPS == 0 {
		c.Radio = radio.DefaultConfig()
	}
	if c.Link.SlotsPerFrame == 0 {
		c.Link = rtlink.DefaultConfig()
	}
	if c.SlotsPerNode == 0 {
		c.SlotsPerNode = 2
	}
	if c.PerfectChannel {
		c.Radio.RefPER = 0
		c.Radio.Burst = radio.GilbertElliott{}
	}
	return c
}

// Cell is one synchronized TDMA cell: the engine, medium, network and the
// EVM runtimes deployed on it. Standalone cells own their engine; cells
// inside a Campus share the campus engine (one virtual timeline) while
// keeping a private radio medium and PRNG fork, so cells never hear each
// other on the air.
type Cell struct {
	name  string
	cfg   CellConfig
	eng   *sim.Engine
	rng   *sim.RNG
	med   *radio.Medium
	net   *rtlink.Network
	ids   []NodeID
	nodes map[NodeID]*Node

	placement Placement
	// prng feeds random placements (nil for deterministic ones).
	prng *sim.RNG
	bus  *Bus
}

// NewCellWith builds a cell from functional options: membership, node
// placement, slot budget and channel loss become declarative data.
//
//	cell, err := evm.NewCellWith(evm.CellConfig{Seed: 1},
//		evm.WithNodeCount(20),
//		evm.WithPlacement(evm.Grid(5, 4)),
//		evm.WithSlotsPerNode(3),
//		evm.WithPER(0.1))
//
// Defaults: Line(3) placement, the CellConfig slot budget, and the
// distance-based loss model.
func NewCellWith(cfg CellConfig, opts ...CellOption) (*Cell, error) {
	spec := cellSpec{placement: Line(3)}
	for _, opt := range opts {
		opt(&spec)
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	return newCell("", sim.New(), sim.NewRNG(cfg.Seed), cfg, spec)
}

// newCell builds a cell on the given engine and RNG stream. NewCellWith
// passes a fresh engine; NewCampus passes the shared campus engine and a
// per-cell fork of the campus RNG, giving every cell an isolated medium
// and loss stream on one deterministic timeline.
func newCell(name string, eng *sim.Engine, rng *sim.RNG, cfg CellConfig, spec cellSpec) (*Cell, error) {
	if spec.slotsPerNode > 0 {
		cfg.SlotsPerNode = spec.slotsPerNode
	}
	if spec.hasPER && spec.per == 0 {
		cfg.PerfectChannel = true
	}
	cfg = cfg.withDefaults()
	med := radio.NewMedium(eng, rng.Fork(), cfg.Radio)
	c := &Cell{
		name:      name,
		cfg:       cfg,
		eng:       eng,
		rng:       rng,
		med:       med,
		ids:       spec.ids,
		nodes:     make(map[NodeID]*Node),
		placement: spec.placement,
		bus:       &Bus{},
	}
	if spec.placement.random {
		c.prng = rng.Fork()
	}
	for i, id := range spec.ids {
		if _, err := med.Attach(id, spec.placement.at(i, c.prng), radio.NewBattery(2600), radio.DefaultEnergyModel()); err != nil {
			return nil, err
		}
	}
	sched, err := buildCellSchedule(spec, cfg)
	if err != nil {
		return nil, err
	}
	net, err := rtlink.NewNetwork(med, cfg.Link, sched)
	if err != nil {
		return nil, err
	}
	for _, id := range spec.ids {
		if _, err := net.Join(id); err != nil {
			return nil, err
		}
	}
	c.net = net
	if spec.hasPER && spec.per > 0 {
		med.ForcePER(spec.per)
	}
	return c, nil
}

// buildCellSchedule derives the cell's TDMA schedule from its options:
// the default full mesh with SlotsPerNode TX slots per member, or — with
// WithLineSchedule — SlotsPerNode interleaved rounds of a multi-hop line
// schedule in which each slot is heard only by the owner's immediate
// line neighbors.
func buildCellSchedule(spec cellSpec, cfg CellConfig) (rtlink.Schedule, error) {
	if !spec.line {
		return rtlink.BuildMeshScheduleK(spec.ids, cfg.Link, cfg.SlotsPerNode)
	}
	order := spec.lineOrder
	if len(order) == 0 {
		order = spec.ids
	}
	if cfg.SlotsPerNode*len(order)+1 > cfg.Link.SlotsPerFrame {
		return nil, fmt.Errorf("evm: line of %d x %d rounds does not fit in %d slots",
			len(order), cfg.SlotsPerNode, cfg.Link.SlotsPerFrame)
	}
	base, err := rtlink.BuildLineSchedule(order, cfg.Link)
	if err != nil {
		return nil, err
	}
	sched := make(rtlink.Schedule, cfg.SlotsPerNode*len(order))
	for round := 0; round < cfg.SlotsPerNode; round++ {
		for slot, as := range base {
			sched[slot+round*len(order)] = as
		}
	}
	return sched, nil
}

// NewCell builds a cell with the given member IDs placed on a line with
// 3 m spacing (well inside radio range) and a full-mesh TDMA schedule.
// It is shorthand for NewCellWith(cfg, WithNodes(ids...)).
func NewCell(cfg CellConfig, ids []NodeID) (*Cell, error) {
	return NewCellWith(cfg, WithNodes(ids...))
}

// Name returns the cell's campus name ("" for standalone cells).
func (c *Cell) Name() string { return c.name }

// Engine returns the virtual-time engine.
func (c *Cell) Engine() *sim.Engine { return c.eng }

// RNG returns the cell's seeded random stream.
func (c *Cell) RNG() *sim.RNG { return c.rng }

// Network returns the RT-Link network.
func (c *Cell) Network() *rtlink.Network { return c.net }

// Medium returns the radio medium (for loss injection in experiments).
func (c *Cell) Medium() *radio.Medium { return c.med }

// Events returns the cell's typed event bus. Subscriptions observe
// structured FailoverEvent / ActuationEvent / MigrationEvent / JoinEvent /
// FaultEvent records with virtual timestamps, in deterministic order.
func (c *Cell) Events() *Bus { return c.bus }

// Members returns the cell member IDs in admission order.
func (c *Cell) Members() []NodeID { return append([]NodeID(nil), c.ids...) }

// Node returns the EVM runtime deployed on id (nil before Deploy or for
// the gateway).
func (c *Cell) Node(id NodeID) *Node { return c.nodes[id] }

// Nodes returns all deployed EVM runtimes.
func (c *Cell) Nodes() []*Node {
	out := make([]*Node, 0, len(c.nodes))
	for _, id := range c.ids {
		if n, ok := c.nodes[id]; ok {
			out = append(out, n)
		}
	}
	return out
}

// Deploy instantiates the EVM runtime on every member except the
// configured gateway, and starts the TDMA network. On failure no runtime
// is left running: nodes started before the error are stopped again.
func (c *Cell) Deploy(vc VCConfig) error {
	if err := vc.Validate(); err != nil {
		return err
	}
	var started []NodeID
	fail := func(err error) error {
		for _, id := range started {
			c.nodes[id].Stop()
			delete(c.nodes, id)
		}
		return err
	}
	for _, id := range c.ids {
		if id == vc.Gateway {
			continue
		}
		link := c.net.Link(id)
		if link == nil {
			return fail(fmt.Errorf("evm: node %v not joined", id))
		}
		node, err := core.NewNode(c.net, link, vc)
		if err != nil {
			return fail(err)
		}
		c.wireNodeEvents(node)
		node.Start()
		c.nodes[id] = node
		started = append(started, id)
	}
	c.installActuationSink(vc.Gateway)
	c.net.Start()
	return nil
}

// installActuationSink puts a minimal actuation receiver on a gateway
// node that hosts no runtime: accepted actuations are published as
// ActuationEvent on the cell's bus, so synthetic-feed scenarios observe
// the control loop closing just like the gas-plant gateway does. A full
// gateway runtime (gateway.New) installs its own handler and replaces
// the sink.
func (c *Cell) installActuationSink(gw NodeID) {
	if gw == 0 || c.nodes[gw] != nil {
		return
	}
	link := c.net.Link(gw)
	if link == nil {
		return
	}
	link.SetHandler(func(msg rtlink.Message) {
		if msg.Kind != wire.KindActuate {
			return
		}
		act, err := wire.DecodeActuate(msg.Payload)
		if err != nil {
			return
		}
		c.bus.publish(ActuationEvent{
			At: c.eng.Now(), Node: msg.Src, Task: act.TaskID, Port: act.Port, Value: act.Value,
		})
	})
}

// wireNodeEvents connects a node runtime to the cell's event bus.
func (c *Cell) wireNodeEvents(node *Node) {
	id := node.ID()
	node.SetMigrationSink(func(task string, from radio.NodeID) {
		c.bus.publish(MigrationEvent{At: c.eng.Now(), Task: task, From: from, To: id})
	})
	if h := node.Head(); h != nil {
		h.SetFailoverSink(func(task string, from, to radio.NodeID) {
			c.bus.publish(FailoverEvent{At: c.eng.Now(), Task: task, From: from, To: to})
		})
		h.SetJoinSink(func(member radio.NodeID) {
			c.bus.publish(JoinEvent{At: c.eng.Now(), Node: member})
		})
		h.SetModeSink(func(mode uint8, atFrame uint64) {
			c.bus.publish(ModeChangeEvent{At: c.eng.Now(), Node: id, Mode: mode, AtFrame: atFrame})
		})
	}
}

// AddNodeRuntime admits a new node at runtime: attaches a radio, extends
// the TDMA schedule with slots for it, joins the link layer and deploys
// the EVM runtime (on-line capacity expansion, §4.2 objective 2). The new
// node is placed by the cell's placement at the next free index. On any
// failure the cell is rolled back to its previous state — no radio, slot
// assignment, link or runtime is leaked.
func (c *Cell) AddNodeRuntime(id NodeID, vc VCConfig) (*Node, error) {
	if _, exists := c.nodes[id]; exists {
		return nil, fmt.Errorf("evm: node %v already deployed", id)
	}
	if c.placement.capacity > 0 && len(c.ids) >= c.placement.capacity {
		return nil, fmt.Errorf("evm: placement %s is full (%d nodes)", c.placement.name, len(c.ids))
	}
	pos := c.placement.at(len(c.ids), c.prng)
	if _, err := c.med.Attach(id, pos, radio.NewBattery(2600), radio.DefaultEnergyModel()); err != nil {
		return nil, err
	}
	oldSched := c.net.Schedule()
	grown := append(append([]NodeID(nil), c.ids...), id)
	sched, err := rtlink.BuildMeshScheduleK(grown, c.cfg.Link, c.cfg.SlotsPerNode)
	if err != nil {
		c.med.Detach(id)
		return nil, err
	}
	if err := c.net.SetSchedule(sched); err != nil {
		c.med.Detach(id)
		return nil, err
	}
	link, err := c.net.Join(id)
	if err != nil {
		_ = c.net.SetSchedule(oldSched)
		c.med.Detach(id)
		return nil, err
	}
	rollback := func() {
		c.net.Leave(id)
		_ = c.net.SetSchedule(oldSched)
		c.med.Detach(id)
	}
	node, err := core.NewNode(c.net, link, vc)
	if err != nil {
		rollback()
		return nil, err
	}
	// Announce to the head.
	payload, err := wire.Join{Node: uint16(id), CPUCapacity: 1, Battery: 1}.Encode()
	if err != nil {
		rollback()
		return nil, err
	}
	c.wireNodeEvents(node)
	node.Start()
	if err := link.Send(rtlink.Message{Dst: vc.Head, Kind: wire.KindJoin, Payload: payload}); err != nil {
		node.Stop()
		rollback()
		return nil, err
	}
	c.ids = grown
	c.nodes[id] = node
	return node, nil
}

// StartSensorFeed broadcasts synthetic sensor snapshots from src every
// period — a stand-in for a plant gateway in examples and experiments.
// Stop the returned ticker to end the feed.
func (c *Cell) StartSensorFeed(src NodeID, period time.Duration, sample func() []SensorReading) (*sim.Ticker, error) {
	link := c.net.Link(src)
	if link == nil {
		return nil, fmt.Errorf("evm: node %v not joined", src)
	}
	if period <= 0 {
		return nil, fmt.Errorf("evm: feed period %v", period)
	}
	tk := c.eng.Every(period, func() {
		payload, err := wire.EncodeSensors(sample())
		if err != nil {
			return
		}
		_ = link.Send(rtlink.Message{Dst: radio.Broadcast, Kind: wire.KindSensor, Payload: payload})
	})
	return tk, nil
}

// StartSensorFeedTo is StartSensorFeed for multi-hop cells: instead of a
// single-hop broadcast (which only a line cell's immediate neighbors
// hear), each sample is unicast to every listed destination so the
// link-layer line routes relay it station by station.
func (c *Cell) StartSensorFeedTo(src NodeID, period time.Duration, sample func() []SensorReading, dsts ...NodeID) (*sim.Ticker, error) {
	link := c.net.Link(src)
	if link == nil {
		return nil, fmt.Errorf("evm: node %v not joined", src)
	}
	if period <= 0 {
		return nil, fmt.Errorf("evm: feed period %v", period)
	}
	if len(dsts) == 0 {
		return nil, fmt.Errorf("evm: unicast feed needs at least one destination")
	}
	for _, dst := range dsts {
		if c.net.Link(dst) == nil {
			return nil, fmt.Errorf("evm: feed destination %v not joined", dst)
		}
	}
	tk := c.eng.Every(period, func() {
		payload, err := wire.EncodeSensors(sample())
		if err != nil {
			return
		}
		for _, dst := range dsts {
			_ = link.Send(rtlink.Message{Dst: dst, Kind: wire.KindSensor, Payload: payload})
		}
	})
	return tk, nil
}

// InstallLineRoutes installs the static next-hop routing table of a
// multi-hop line cell: every station learns, for every other station,
// the line neighbor leading toward it, so unicast traffic (sensor
// snapshots outward, actuations back to the gateway, fault reports to
// the head) is relayed hop by hop through the intermediate stations.
// order is the station sequence along the line (empty = member order);
// it must match the WithLineSchedule order.
func (c *Cell) InstallLineRoutes(order ...NodeID) error {
	if len(order) == 0 {
		order = c.ids
	}
	for i, id := range order {
		link := c.net.Link(id)
		if link == nil {
			return fmt.Errorf("evm: node %v not joined", id)
		}
		for j, dst := range order {
			if i == j {
				continue
			}
			next := dst
			switch {
			case j > i+1:
				next = order[i+1]
			case j < i-1:
				next = order[i-1]
			}
			// Adjacent destinations get an explicit identity route too:
			// the entry is what marks this station as a relay for
			// fragments passing through it.
			link.SetRoute(dst, next)
		}
	}
	return nil
}

// Run advances virtual time by d.
func (c *Cell) Run(d time.Duration) {
	_ = c.eng.RunUntil(c.eng.Now() + d)
}

// Now returns the current virtual time.
func (c *Cell) Now() time.Duration { return c.eng.Now() }

// Stop halts the network and all node runtimes. Nodes stop in sorted
// ID order so any teardown side effects land deterministically.
func (c *Cell) Stop() {
	c.net.Stop()
	for _, id := range sim.SortedKeys(c.nodes) {
		c.nodes[id].Stop()
	}
}
