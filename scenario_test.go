package evm

import (
	"testing"
	"time"
)

func newGasPlant(t *testing.T, cfg GasPlantConfig) *GasPlant {
	t.Helper()
	s, err := NewGasPlant(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGasPlantSteadyState(t *testing.T) {
	s := newGasPlant(t, DefaultGasPlantConfig())
	s.Run(120 * time.Second)
	level := s.Plant.LTSLevelPct()
	if level < 40 || level > 60 {
		t.Fatalf("closed-loop level = %.1f, want near 50", level)
	}
	if s.ActiveController() != GasCtrlAID {
		t.Fatalf("active controller = %v at steady state", s.ActiveController())
	}
	if s.GW.Stats().ActuationsOK == 0 {
		t.Fatal("no actuations reached the plant")
	}
	if s.GW.Stats().SensorBroadcasts == 0 {
		t.Fatal("no sensor broadcasts")
	}
}

func TestFig6ShapeReproduced(t *testing.T) {
	// The Fig. 6(b) shape: level collapses after the fault, the EVM
	// fails over to Ctrl-B, flows spike and then recover toward nominal.
	// The paper's backup deliberates for ~300 s before the switch; a
	// 60 s deviation window here keeps the same shape at shorter test
	// runtime.
	cfg := DefaultGasPlantConfig()
	cfg.DeviationWindow = 240 // 60 s at 250 ms cycles
	s := newGasPlant(t, cfg)
	res, err := s.RunFig6(120*time.Second, 600*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailoverAt == 0 {
		t.Fatal("no failover")
	}
	if res.FailoverAt <= res.FaultAt {
		t.Fatalf("failover %v before fault %v", res.FailoverAt, res.FaultAt)
	}
	if res.LevelMin >= res.LevelBefore-10 {
		t.Fatalf("level did not collapse: before %.1f min %.1f", res.LevelBefore, res.LevelMin)
	}
	if res.FlowPeak <= res.FlowNominal*1.5 {
		t.Fatalf("tower feed did not spike: nominal %.1f peak %.1f", res.FlowNominal, res.FlowPeak)
	}
	// Recovery: the new primary pulls the level back above the minimum.
	if res.LevelEnd <= res.LevelMin+5 {
		t.Fatalf("no recovery: min %.1f end %.1f", res.LevelMin, res.LevelEnd)
	}
	if s.ActiveController() != GasCtrlBID {
		t.Fatalf("active controller = %v after Fig6, want Ctrl-B", s.ActiveController())
	}
	// The recorder holds every Fig. 6(b) series.
	for _, name := range []string{"lts_level_pct", "sepliq_kmolh", "ltsliq_kmolh", "towerfeed_kmolh"} {
		found := false
		for _, n := range s.Recorder().Names() {
			if n == name {
				found = true
			}
		}
		if !found {
			t.Fatalf("series %s missing", name)
		}
	}
}

func TestCrashFailover(t *testing.T) {
	s := newGasPlant(t, DefaultGasPlantConfig())
	s.Run(60 * time.Second)
	s.CrashPrimary()
	s.Run(30 * time.Second)
	if s.ActiveController() != GasCtrlBID {
		t.Fatalf("active = %v after crash, want Ctrl-B", s.ActiveController())
	}
	// The plant keeps being controlled.
	before := s.GW.Stats().ActuationsOK
	s.Run(10 * time.Second)
	if s.GW.Stats().ActuationsOK == before {
		t.Fatal("control stopped after crash failover")
	}
}

func TestControlLatencyWithinThird(t *testing.T) {
	// Paper objective 5: control cycle <= 250 ms with latency <= 1/3 of
	// the cycle.
	s := newGasPlant(t, DefaultGasPlantConfig())
	s.Run(60 * time.Second)
	lats := s.ActuationLatencies()
	if len(lats) == 0 {
		t.Fatal("no latencies measured")
	}
	bound := 250 * time.Millisecond / 3
	for _, l := range lats {
		if l > bound {
			t.Fatalf("actuation latency %v exceeds %v", l, bound)
		}
	}
}

func TestOperationSwitchBlocksStaleController(t *testing.T) {
	// After failover the gateway must deny Ctrl-A's commands.
	s := newGasPlant(t, DefaultGasPlantConfig())
	s.Run(30 * time.Second)
	s.InjectPrimaryFault()
	s.Run(60 * time.Second)
	if s.ActiveController() != GasCtrlBID {
		t.Skip("failover did not complete in window")
	}
	denied := s.GW.Stats().ActuationsDenied
	if denied == 0 {
		// Ctrl-A may already be Indicator (not sending); that is also
		// acceptable — verify it is no longer actuating at all.
		if s.Cell.Node(GasCtrlAID).Role(LTSTaskID) == RoleActive {
			t.Fatal("old primary still active and never denied")
		}
	}
}

func TestGasPlantUnderPacketLoss(t *testing.T) {
	cfg := DefaultGasPlantConfig()
	cfg.PER = 0.1
	s := newGasPlant(t, cfg)
	s.Run(120 * time.Second)
	level := s.Plant.LTSLevelPct()
	if level < 35 || level > 65 {
		t.Fatalf("closed loop under 10%% PER drifted to %.1f", level)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (float64, NodeID) {
		s := newGasPlant(t, DefaultGasPlantConfig())
		if _, err := s.RunFig6(60*time.Second, 200*time.Second); err != nil {
			t.Fatal(err)
		}
		return s.Plant.LTSLevelPct(), s.ActiveController()
	}
	l1, a1 := run()
	l2, a2 := run()
	if l1 != l2 || a1 != a2 {
		t.Fatalf("same seed diverged: %.6f/%v vs %.6f/%v", l1, a1, l2, a2)
	}
}

func TestCellAddNodeRuntime(t *testing.T) {
	s := newGasPlant(t, DefaultGasPlantConfig())
	s.Run(10 * time.Second)
	const newID NodeID = 9
	node, err := s.Cell.AddNodeRuntime(newID, s.VC)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(10 * time.Second)
	if node == nil {
		t.Fatal("nil node")
	}
	h := s.Cell.Node(GasHeadID).Head()
	if h.Stats().Joins != 1 {
		t.Fatal("join not registered at head")
	}
	// Migrate the task replica to the new node; it becomes a live
	// backup.
	if err := s.Cell.Node(GasCtrlAID).MigrateTask(LTSTaskID, newID); err != nil {
		t.Fatal(err)
	}
	s.Run(10 * time.Second)
	if node.Stats().MigrationsIn != 1 {
		t.Fatal("capacity-expansion migration failed")
	}
}

func TestVMBackedGasPlant(t *testing.T) {
	cfg := DefaultGasPlantConfig()
	cfg.UseVM = true
	s := newGasPlant(t, cfg)
	s.Run(60 * time.Second)
	if s.GW.Stats().ActuationsOK == 0 {
		t.Fatal("VM-backed controller produced no actuations")
	}
	// VM law is proportional-only; the level should still be pulled
	// toward the setpoint band.
	level := s.Plant.LTSLevelPct()
	if level < 30 || level > 70 {
		t.Fatalf("VM-controlled level = %.1f", level)
	}
}
