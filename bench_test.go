// Benchmarks regenerating every table/figure of the paper's evaluation
// plus the quantitative claims in the text. Each benchmark maps to an
// experiment in DESIGN.md §4 and records its headline quantity with
// b.ReportMetric so `go test -bench` output doubles as the results table
// (EXPERIMENTS.md).
package evm

import (
	"fmt"
	"testing"
	"time"

	"evm/internal/bqp"
	"evm/internal/core"
	"evm/internal/mac"
	"evm/internal/radio"
	"evm/internal/rtos"
	"evm/internal/sim"
	"evm/internal/trace"
	"evm/internal/vm"
)

// --- E1 / Fig. 6(b): fault, fail-over and recovery ------------------------

func BenchmarkFig6Failover(b *testing.B) {
	var lastLevelDrop, lastRecover float64
	for i := 0; i < b.N; i++ {
		cfg := DefaultGasPlantConfig()
		cfg.Seed = uint64(i + 1)
		cfg.DeviationWindow = 240 // 60 s deliberation, shortened from the paper's 300 s
		s, err := NewGasPlant(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.RunFig6(120*time.Second, 600*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		lastLevelDrop = res.LevelBefore - res.LevelMin
		lastRecover = res.LevelEnd - res.LevelMin
	}
	b.ReportMetric(lastLevelDrop, "level-drop-pct")
	b.ReportMetric(lastRecover, "level-recover-pct")
}

// --- E2: fail-over latency distribution vs packet loss ----------------------

func BenchmarkFailoverLatency(b *testing.B) {
	for _, per := range []float64{0, 0.1, 0.3} {
		per := per
		b.Run(fmt.Sprintf("per=%.1f", per), func(b *testing.B) {
			var total time.Duration
			count := 0
			for i := 0; i < b.N; i++ {
				cfg := DefaultGasPlantConfig()
				cfg.Seed = uint64(i + 1)
				cfg.PER = per
				cfg.DeviationWindow = 8
				s, err := NewGasPlant(cfg)
				if err != nil {
					b.Fatal(err)
				}
				s.Run(30 * time.Second)
				faultAt := s.Cell.Now()
				var failAt time.Duration
				s.Cell.Events().Subscribe(func(ev Event) {
					if _, ok := ev.(FailoverEvent); ok && failAt == 0 {
						failAt = s.Cell.Now()
					}
				})
				s.InjectPrimaryFault()
				s.Run(60 * time.Second)
				if failAt > 0 {
					total += failAt - faultAt
					count++
				}
			}
			if count > 0 {
				b.ReportMetric(total.Seconds()/float64(count), "failover-sec")
				b.ReportMetric(float64(count)/float64(b.N), "success-ratio")
			}
		})
	}
}

// --- E3: MAC lifetime comparison (RT-Link vs B-MAC vs S-MAC) ----------------

func BenchmarkMACLifetime(b *testing.B) {
	p := mac.DefaultParams()
	p.EventRateHz = 0.1
	var rtYears, bmYears, smYears float64
	for i := 0; i < b.N; i++ {
		rtCfg, err := mac.RTLinkForDutyCycle(0.05)
		if err != nil {
			b.Fatal(err)
		}
		rt, err := mac.RTLink(p, rtCfg)
		if err != nil {
			b.Fatal(err)
		}
		bCfg, err := mac.BMACForDutyCycle(0.05)
		if err != nil {
			b.Fatal(err)
		}
		bm, err := mac.BMAC(p, bCfg)
		if err != nil {
			b.Fatal(err)
		}
		sCfg, err := mac.SMACForDutyCycle(0.05)
		if err != nil {
			b.Fatal(err)
		}
		sm, err := mac.SMAC(p, sCfg)
		if err != nil {
			b.Fatal(err)
		}
		rtYears = rt.Lifetime.Hours() / 8760
		bmYears = bm.Lifetime.Hours() / 8760
		smYears = sm.Lifetime.Hours() / 8760
	}
	b.ReportMetric(rtYears, "rtlink-years")
	b.ReportMetric(bmYears, "bmac-years")
	b.ReportMetric(smYears, "smac-years")
}

// --- E4: AM time-sync jitter -------------------------------------------------

func BenchmarkSyncJitter(b *testing.B) {
	eng := sim.New()
	med := radio.NewMedium(eng, sim.NewRNG(1), radio.DefaultConfig())
	for i := 1; i <= 10; i++ {
		if _, err := med.Attach(radio.NodeID(i), radio.Position{X: float64(i)}, nil, radio.DefaultEnergyModel()); err != nil {
			b.Fatal(err)
		}
	}
	var jitters []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, j := range med.BroadcastSync() {
			jitters = append(jitters, float64(j.Microseconds()))
		}
	}
	st := trace.Summarize(jitters)
	b.ReportMetric(st.P99, "p99-jitter-us")
	b.ReportMetric(st.Max, "max-jitter-us")
}

// --- E5: control cycle latency -------------------------------------------------

func BenchmarkControlCycle(b *testing.B) {
	var maxFrac float64
	for i := 0; i < b.N; i++ {
		cfg := DefaultGasPlantConfig()
		cfg.Seed = uint64(i + 1)
		s, err := NewGasPlant(cfg)
		if err != nil {
			b.Fatal(err)
		}
		s.Run(60 * time.Second)
		for _, l := range s.ActuationLatencies() {
			if f := l.Seconds() / cfg.ControlPeriod.Seconds(); f > maxFrac {
				maxFrac = f
			}
		}
	}
	b.ReportMetric(maxFrac, "max-latency-cycle-frac")
}

// --- E6: migration cost vs state size -----------------------------------------

// blobLogic carries an arbitrary-size state for the migration sweep.
type blobLogic struct{ state []byte }

func (l *blobLogic) Step(input, dt float64) (float64, error) { return input, nil }
func (l *blobLogic) Snapshot() ([]byte, error)               { return l.state, nil }
func (l *blobLogic) Restore(b []byte) error {
	l.state = append([]byte(nil), b...)
	return nil
}

func BenchmarkMigrationCost(b *testing.B) {
	for _, size := range []int{64, 512, 2048, 8192} {
		size := size
		b.Run(fmt.Sprintf("state=%dB", size), func(b *testing.B) {
			var totalSec float64
			for i := 0; i < b.N; i++ {
				cell, err := NewCell(CellConfig{Seed: uint64(i + 1), PerfectChannel: true},
					[]NodeID{1, 2, 3, 4})
				if err != nil {
					b.Fatal(err)
				}
				vc := VCConfig{
					Name: "mig", Head: 4, Gateway: 1,
					Tasks: []TaskSpec{{
						ID: "t", SensorPort: 0, ActuatorPort: 1,
						Period: 250 * time.Millisecond, WCET: 5 * time.Millisecond,
						Candidates:   []NodeID{2},
						DeviationTol: 1, DeviationWindow: 3, SilenceWindow: 8,
						MakeLogic: func() (TaskLogic, error) {
							return &blobLogic{state: make([]byte, size)}, nil
						},
					}},
				}
				if err := cell.Deploy(vc); err != nil {
					b.Fatal(err)
				}
				cell.Run(time.Second)
				start := cell.Now()
				var done time.Duration
				cell.Events().Subscribe(func(ev Event) {
					if _, ok := ev.(MigrationEvent); ok && done == 0 {
						done = cell.Now()
					}
				})
				if err := cell.Node(2).MigrateTask("t", 3); err != nil {
					b.Fatal(err)
				}
				cell.Run(120 * time.Second)
				if done == 0 {
					b.Fatal("migration never completed")
				}
				totalSec += (done - start).Seconds()
			}
			b.ReportMetric(totalSec/float64(b.N), "migration-sec")
		})
	}
}

// --- E7: BQP assignment quality and effort --------------------------------------

func BenchmarkBQPAssign(b *testing.B) {
	sizes := []struct{ tasks, nodes int }{{4, 3}, {8, 4}, {16, 8}}
	for _, sz := range sizes {
		sz := sz
		b.Run(fmt.Sprintf("t%dxn%d", sz.tasks, sz.nodes), func(b *testing.B) {
			rng := sim.NewRNG(99)
			var annealCost, greedyCost float64
			for i := 0; i < b.N; i++ {
				p := randomAssignProblem(rng, sz.tasks, sz.nodes)
				g, err := bqp.SolveGreedy(p)
				if err != nil {
					b.Fatal(err)
				}
				a, err := bqp.SolveAnneal(p, rng.Fork(), 20_000)
				if err != nil {
					b.Fatal(err)
				}
				annealCost += a.Cost
				greedyCost += g.Cost
			}
			if annealCost > 0 {
				b.ReportMetric(greedyCost/annealCost, "greedy-vs-anneal-cost")
			}
		})
	}
}

func randomAssignProblem(rng *sim.RNG, tasks, nodes int) *bqp.Problem {
	p := &bqp.Problem{
		Cost: make([][]float64, tasks),
		Pair: make([][]float64, tasks),
		Util: make([]float64, tasks),
		Cap:  make([]float64, nodes),
	}
	for t := 0; t < tasks; t++ {
		p.Cost[t] = make([]float64, nodes)
		p.Pair[t] = make([]float64, tasks)
		for n := 0; n < nodes; n++ {
			p.Cost[t][n] = rng.Float64() * 10
		}
		p.Util[t] = 0.05 + rng.Float64()*0.1
	}
	for t := 0; t < tasks; t++ {
		for u := t + 1; u < tasks; u++ {
			if rng.Bool(0.3) {
				v := rng.Float64() * 5
				p.Pair[t][u] = v
				p.Pair[u][t] = v
			}
		}
	}
	for n := 0; n < nodes; n++ {
		p.Cap[n] = 1
	}
	return p
}

// --- E8: graceful degradation vs failures -----------------------------------

func BenchmarkDegradation(b *testing.B) {
	for _, kills := range []int{0, 1, 2, 3} {
		kills := kills
		b.Run(fmt.Sprintf("failures=%d", kills), func(b *testing.B) {
			var withEVM, withoutEVM float64
			for i := 0; i < b.N; i++ {
				evmCov := degradationRun(b, uint64(i+1), kills, true)
				staticCov := degradationRun(b, uint64(i+1), kills, false)
				withEVM += evmCov
				withoutEVM += staticCov
			}
			b.ReportMetric(withEVM/float64(b.N), "coverage-evm")
			b.ReportMetric(withoutEVM/float64(b.N), "coverage-static")
		})
	}
}

// degradationRun deploys one task with 4 candidates, kills the first
// `kills` of them, and returns the coverage ratio. With reorganize=false
// the watchdogs are stopped (static assignment baseline).
func degradationRun(b *testing.B, seed uint64, kills int, reorganize bool) float64 {
	b.Helper()
	ids := []NodeID{1, 2, 3, 4, 5, 6}
	cell, err := NewCell(CellConfig{Seed: seed, PerfectChannel: true}, ids)
	if err != nil {
		b.Fatal(err)
	}
	vc := VCConfig{
		Name: "deg", Head: 6, Gateway: 1,
		Tasks: []TaskSpec{{
			ID: "t", SensorPort: 0, ActuatorPort: 1,
			Period: 250 * time.Millisecond, WCET: 5 * time.Millisecond,
			Candidates:   []NodeID{2, 3, 4, 5},
			DeviationTol: 5, DeviationWindow: 4, SilenceWindow: 8,
			MakeLogic: func() (TaskLogic, error) {
				return NewPIDLogic(PIDParams{Kp: 1, Ki: 0.1, OutMin: 0, OutMax: 100,
					Setpoint: 50, CutoffHz: 0.4, RateHz: 4})
			},
		}},
	}
	if err := cell.Deploy(vc); err != nil {
		b.Fatal(err)
	}
	feed, err := cell.StartSensorFeed(1, 250*time.Millisecond, func() []SensorReading {
		return []SensorReading{{Port: 0, Value: 50}}
	})
	if err != nil {
		b.Fatal(err)
	}
	defer feed.Stop()
	cell.Run(5 * time.Second)
	if !reorganize {
		for _, n := range cell.Nodes() {
			n.Stop() // no watchdogs: static task binding
		}
	}
	for k := 0; k < kills; k++ {
		cell.Node(NodeID(2 + k)).Link().Radio().Fail()
		cell.Run(10 * time.Second) // allow sequential fail-overs
	}
	rep := EvaluateQoS(vc, cell.Nodes())
	return rep.CoverageRatio
}

// --- E9: admission acceptance vs offered utilization ---------------------------

func BenchmarkAdmission(b *testing.B) {
	rng := sim.NewRNG(5)
	for _, util := range []float64{0.5, 0.7, 0.9} {
		util := util
		b.Run(fmt.Sprintf("u=%.1f", util), func(b *testing.B) {
			var ubAccept, rtaAccept int
			total := 0
			for i := 0; i < b.N; i++ {
				ts := randomTaskSet(rng, 5, util)
				total++
				if rtos.Schedulable(rtos.AssignRM(ts), rtos.TestUB) {
					ubAccept++
				}
				if rtos.Schedulable(rtos.AssignRM(ts), rtos.TestRTA) {
					rtaAccept++
				}
			}
			b.ReportMetric(float64(ubAccept)/float64(total), "accept-ub")
			b.ReportMetric(float64(rtaAccept)/float64(total), "accept-rta")
		})
	}
}

func randomTaskSet(rng *sim.RNG, n int, targetUtil float64) rtos.TaskSet {
	ts := make(rtos.TaskSet, 0, n)
	per := targetUtil / float64(n)
	for i := 0; i < n; i++ {
		period := time.Duration(10+rng.Intn(200)) * time.Millisecond
		u := per * (0.5 + rng.Float64())
		wcet := time.Duration(float64(period) * u)
		if wcet <= 0 {
			wcet = time.Millisecond
		}
		if wcet > period {
			wcet = period
		}
		ts = append(ts, rtos.Task{ID: rtos.TaskID(fmt.Sprintf("t%d", i)), Period: period, WCET: wcet})
	}
	return ts
}

// --- E10: attestation overhead and corruption detection -------------------------

func BenchmarkAttestation(b *testing.B) {
	code := make([]byte, 1024)
	rng := sim.NewRNG(3)
	for i := range code {
		code[i] = byte(rng.Intn(256))
	}
	c := vm.Capsule{TaskID: "bench", Version: 1, Code: code}
	enc, err := c.Encode()
	if err != nil {
		b.Fatal(err)
	}
	detected, trials := 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bad := append([]byte(nil), enc...)
		pos := 2 + rng.Intn(len(bad)-2)
		bad[pos] ^= 1 << uint(rng.Intn(8))
		if _, err := vm.Decode(bad); err != nil {
			detected++
		}
		trials++
	}
	b.ReportMetric(float64(detected)/float64(trials), "corruption-detect-ratio")
}

// --- Ablation: detection policy (output deviation vs silence watchdog) ----------

func BenchmarkDetectionPolicy(b *testing.B) {
	scenarios := []struct {
		name  string
		crash bool // crash (silent) vs byzantine (wrong output)
	}{
		{"byzantine-deviation", false},
		{"crash-silence", true},
	}
	for _, sc := range scenarios {
		sc := sc
		b.Run(sc.name, func(b *testing.B) {
			var total time.Duration
			count := 0
			for i := 0; i < b.N; i++ {
				cfg := DefaultGasPlantConfig()
				cfg.Seed = uint64(i + 1)
				cfg.DeviationWindow = 8
				s, err := NewGasPlant(cfg)
				if err != nil {
					b.Fatal(err)
				}
				var failAt time.Duration
				s.Cell.Events().Subscribe(func(ev Event) {
					if _, ok := ev.(FailoverEvent); ok && failAt == 0 {
						failAt = s.Cell.Now()
					}
				})
				s.Run(30 * time.Second)
				faultAt := s.Cell.Now()
				if sc.crash {
					s.CrashPrimary()
				} else {
					s.InjectPrimaryFault()
				}
				s.Run(60 * time.Second)
				if failAt > 0 {
					total += failAt - faultAt
					count++
				}
			}
			if count > 0 {
				b.ReportMetric(total.Seconds()/float64(count), "detect+failover-sec")
			}
		})
	}
}

// --- Ablation: passive vs active state sharing -----------------------------------

// BenchmarkStateSharing compares backup/primary output divergence under
// heavy packet loss with passive observation only vs periodic active
// state replication (paper §3: "state is shared either passively or
// actively").
func BenchmarkStateSharing(b *testing.B) {
	for _, mode := range []struct {
		name  string
		every int
	}{{"passive", 0}, {"active-every-8", 8}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var totalDiff float64
			samples := 0
			for i := 0; i < b.N; i++ {
				cell, err := NewCell(CellConfig{Seed: uint64(i + 1), SlotsPerNode: 3}, []NodeID{1, 2, 3, 4})
				if err != nil {
					b.Fatal(err)
				}
				cell.Medium().ForcePER(0.3)
				vc := VCConfig{
					Name: "share", Head: 4, Gateway: 1,
					Tasks: []TaskSpec{{
						ID: "t", SensorPort: 0, ActuatorPort: 1,
						Period: 250 * time.Millisecond, WCET: 5 * time.Millisecond,
						Candidates:   []NodeID{2, 3},
						DeviationTol: 20, DeviationWindow: 200, SilenceWindow: 200,
						ReplicateEvery: mode.every,
						MakeLogic: func() (TaskLogic, error) {
							return NewPIDLogic(PIDParams{Kp: 2, Ki: 0.5, OutMin: 0, OutMax: 100,
								Setpoint: 50, CutoffHz: 0.4, RateHz: 4})
						},
					}},
				}
				if err := cell.Deploy(vc); err != nil {
					b.Fatal(err)
				}
				rng := sim.NewRNG(uint64(i + 7))
				feed, err := cell.StartSensorFeed(1, 250*time.Millisecond, func() []SensorReading {
					return []SensorReading{{Port: 0, Value: 45 + 10*rng.Float64()}}
				})
				if err != nil {
					b.Fatal(err)
				}
				probe := cell.Engine().Every(time.Second, func() {
					outA, okA := cell.Node(2).LastOutput("t")
					outB, okB := cell.Node(3).LastOutput("t")
					if okA && okB {
						d := outA - outB
						if d < 0 {
							d = -d
						}
						totalDiff += d
						samples++
					}
				})
				cell.Run(60 * time.Second)
				probe.Stop()
				feed.Stop()
			}
			if samples > 0 {
				b.ReportMetric(totalDiff/float64(samples), "backup-divergence")
			}
		})
	}
}

// --- Ablation: BQP vs greedy assignment quality (E7 companion) ------------------

func BenchmarkAssignOptimalGap(b *testing.B) {
	rng := sim.NewRNG(17)
	var annGap, greedyGap float64
	n := 0
	for i := 0; i < b.N; i++ {
		p := randomAssignProblem(rng, 5, 3)
		opt, err := bqp.SolveExhaustive(p)
		if err != nil {
			b.Fatal(err)
		}
		g, err := bqp.SolveGreedy(p)
		if err != nil {
			b.Fatal(err)
		}
		a, err := bqp.SolveAnneal(p, rng.Fork(), 20_000)
		if err != nil {
			b.Fatal(err)
		}
		if opt.Cost > 0 {
			annGap += a.Cost / opt.Cost
			greedyGap += g.Cost / opt.Cost
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(annGap/float64(n), "anneal-vs-optimal")
		b.ReportMetric(greedyGap/float64(n), "greedy-vs-optimal")
	}
}

// --- Federation: placement policies on the ring backbone ------------------------

// BenchmarkPlacementPolicies runs the policy-comparison workload (the
// refinery on the lossy ring backbone with an outage window on unit-a)
// once per policy and reports the coordinator overload ticks — the
// headline of the PR-3 policy experiment. Campus-BQP should report 1.
func BenchmarkPlacementPolicies(b *testing.B) {
	for _, pol := range []string{PolicyLeastLoaded, PolicyCampusBQP, PolicyAffinity} {
		pol := pol
		b.Run(pol, func(b *testing.B) {
			var overloads, rebalances float64
			for i := 0; i < b.N; i++ {
				res := (&Runner{Workers: 1}).Run([]RunSpec{{
					Scenario: ScenarioRefineryRing, Seed: uint64(i + 2), Horizon: 35 * time.Second,
					Faults:    RefineryOutagePlan(10*time.Second, 22*time.Second),
					FaultCell: "unit-a", Policy: pol,
				}})
				if res[0].Err != nil {
					b.Fatal(res[0].Err)
				}
				overloads += res[0].Metrics[MetricCellOverloads]
				rebalances += res[0].Metrics[MetricRebalances]
			}
			b.ReportMetric(overloads/float64(b.N), "overload-ticks")
			b.ReportMetric(rebalances/float64(b.N), "rebalances")
		})
	}
}

// BenchmarkPipelineLineCell measures the multi-hop line scenario: a full
// fault-free horizon plus the relayed-fragment volume.
func BenchmarkPipelineLineCell(b *testing.B) {
	var relayed float64
	for i := 0; i < b.N; i++ {
		exp, err := BuildScenario(RunSpec{Scenario: ScenarioPipeline, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		exp.Cell.Run(30 * time.Second)
		relayed = exp.Metrics()["relayed_frags"]
		exp.Cleanup()
	}
	b.ReportMetric(relayed, "relayed-frags")
}

// --- Core data-path micro-benchmarks --------------------------------------------

func BenchmarkVMInterpreterStep(b *testing.B) {
	code, err := vm.Assemble(LTSCapsuleSource)
	if err != nil {
		b.Fatal(err)
	}
	logic, err := core.NewVMLogic(vm.Capsule{TaskID: "x", Code: code}, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := logic.Step(48.5, 0.25); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPIDLogicStep(b *testing.B) {
	logic, err := NewPIDLogic(PIDParams{Kp: 1.2, Ki: 0.08, Kd: 0.2,
		OutMin: 0, OutMax: 100, Setpoint: 50, CutoffHz: 0.2, RateHz: 4, Reverse: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := logic.Step(48.5, 0.25); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRingSeverRecovery measures the link-dynamics acceptance
// workload end to end: outage, mid-outage ring sever, handshake
// rebalance the long way round — reporting the reroute volume and
// confirming zero invariant violations per run.
func BenchmarkRingSeverRecovery(b *testing.B) {
	var reroutes, rebalances float64
	for i := 0; i < b.N; i++ {
		res := (&Runner{Workers: 1}).Run([]RunSpec{{
			Scenario: ScenarioRefineryRingSever, Seed: uint64(i + 1), Horizon: 40 * time.Second,
		}})
		if res[0].Err != nil {
			b.Fatal(res[0].Err)
		}
		reroutes += res[0].Metrics[MetricBackboneReroutes]
		rebalances += res[0].Metrics[MetricRebalances]
	}
	b.ReportMetric(reroutes/float64(b.N), "reroutes")
	b.ReportMetric(rebalances/float64(b.N), "rebalances")
}

// BenchmarkInvariantChecking measures the replay cost of the built-in
// checkers over a full sever-scenario stream (events/op is the stream
// length).
func BenchmarkInvariantChecking(b *testing.B) {
	exp, err := BuildScenario(RunSpec{Scenario: ScenarioRefineryRingSever, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	log := exp.Campus.Events().Log()
	exp.Campus.Run(40 * time.Second)
	events := log.Events()
	exp.Cleanup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if vs := CheckEvents(events, DefaultInvariants()...); len(vs) != 0 {
			b.Fatalf("invariants violated: %v", vs)
		}
	}
	b.ReportMetric(float64(len(events)), "events")
}

// BenchmarkCampusRollout measures one full ota-campus run: the 4-cell
// staged canary rollout over the lossy ring backbone, through unit-b's
// PER burst, to the 30s horizon. capsule_frames/op is the per-replica
// delivery volume; rollouts/op must stay 1.
func BenchmarkCampusRollout(b *testing.B) {
	var frames, rollouts, rollbacks float64
	for i := 0; i < b.N; i++ {
		res := (&Runner{Workers: 1}).Run([]RunSpec{{
			Scenario: ScenarioOTACampus, Seed: uint64(i + 1), Horizon: 30 * time.Second,
		}})
		if res[0].Err != nil {
			b.Fatal(res[0].Err)
		}
		frames += res[0].Metrics[MetricCapsuleFrames]
		rollouts += res[0].Metrics[MetricRollouts]
		rollbacks += res[0].Metrics[MetricRollbacks]
	}
	b.ReportMetric(frames/float64(b.N), "capsule_frames")
	b.ReportMetric(rollouts/float64(b.N), "rollouts")
	b.ReportMetric(rollbacks/float64(b.N), "rollbacks")
}

// --- Observability: span-derived latency distributions ----------------------

// BenchmarkSpanLatencies runs traced scenarios through the Runner and
// reports the span-derived latency percentiles so the cross-PR trend
// table charts control-path latency (escalation, actuation interval,
// rollout staging) alongside ns/op. All values come from virtual time,
// so they are stable across machines and repeat byte-identically per
// seed.
func BenchmarkSpanLatencies(b *testing.B) {
	cases := []struct {
		scenario string
		report   [][2]string // {reported unit, Runner metric key}
	}{
		{ScenarioCampusFailover, [][2]string{
			{"escalation_p95_ms", "span_escalation_p95_ms"},
			{"actuation_p99_ms", "span_actuation-interval_p99_ms"},
		}},
		{ScenarioOTACampus, [][2]string{
			{"rollout_stage_p95_ms", "span_rollout-stage_p95_ms"},
			{"actuation_p99_ms", "span_actuation-interval_p99_ms"},
		}},
	}
	for _, c := range cases {
		b.Run(c.scenario, func(b *testing.B) {
			var last map[string]float64
			for i := 0; i < b.N; i++ {
				res := (&Runner{Workers: 1, Trace: true}).Run([]RunSpec{{
					Scenario: c.scenario, Seed: uint64(i + 1), Horizon: 30 * time.Second,
				}})
				if res[0].Err != nil {
					b.Fatal(res[0].Err)
				}
				last = res[0].Metrics
			}
			for _, kv := range c.report {
				if v, ok := last[kv[1]]; ok {
					b.ReportMetric(v, kv[0])
				}
			}
		})
	}
}
