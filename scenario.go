package evm

import (
	"fmt"
	"time"

	"evm/internal/core"
	"evm/internal/gateway"
	"evm/internal/plant"
	"evm/internal/radio"
	"evm/internal/trace"
	"evm/internal/vm"
)

// Default node IDs for the gas-plant testbed (Fig. 5: six interconnected
// nodes around a gateway).
const (
	GasGatewayID NodeID = 1
	GasCtrlAID   NodeID = 2
	GasCtrlBID   NodeID = 3
	GasHeadID    NodeID = 4
	GasSensorID  NodeID = 5
	GasActID     NodeID = 6
)

// LTSTaskID names the Fig. 6 control task.
const LTSTaskID = "lts-level"

// ChillerTaskID names the chiller temperature loop (one of the other
// controllers in the paper's 8-controller deployment).
const ChillerTaskID = "chiller-temp"

// ReboilTaskID names the Depropanizer bottoms-composition loop.
const ReboilTaskID = "depropanizer-c3"

// GasPlantConfig parameterizes the hardware-in-loop scenario.
type GasPlantConfig struct {
	Seed uint64
	// ControlPeriod is the cycle time (paper: 1/4 s or less).
	ControlPeriod time.Duration
	// Setpoint is the LTS level target in percent.
	Setpoint float64
	// DeviationTol / DeviationWindow / SilenceWindow set the backup's
	// fault-detection policy.
	DeviationTol    float64
	DeviationWindow int
	SilenceWindow   int
	// DormantAfter is the Indicator -> Dormant delay (paper: 200 s).
	DormantAfter time.Duration
	// PER forces a fixed link loss rate; negative keeps the distance
	// model; 0 gives a perfect channel.
	PER float64
	// UseVM runs the control law as EVM byte code instead of native PID.
	UseVM bool
}

// DefaultGasPlantConfig mirrors the paper's numbers: 250 ms cycle,
// 50% level setpoint, 200 s dormant delay.
func DefaultGasPlantConfig() GasPlantConfig {
	return GasPlantConfig{
		Seed:            1,
		ControlPeriod:   250 * time.Millisecond,
		Setpoint:        50,
		DeviationTol:    10,
		DeviationWindow: 8,
		SilenceWindow:   8,
		DormantAfter:    200 * time.Second,
		PER:             0,
	}
}

// GasPlant is the deployed Fig. 5 testbed: the plant, the gateway and a
// Virtual Component of controllers.
type GasPlant struct {
	Cell  *Cell
	Plant *plant.Plant
	GW    *gateway.Gateway
	VC    VCConfig

	cfg GasPlantConfig
	rec *trace.Recorder
	// actLatencies collects gateway-measured sensor-to-actuation
	// latencies (experiment E5).
	actLatencies []time.Duration
}

// chillerPIDFactory builds the chiller temperature controller: reverse-
// acting PID holding the LTS at -20 C by modulating refrigeration duty.
func chillerPIDFactory(cfg GasPlantConfig) func() (TaskLogic, error) {
	rate := 1.0 / cfg.ControlPeriod.Seconds()
	return func() (TaskLogic, error) {
		return NewPIDLogic(PIDParams{
			Kp: 5, Ki: 0.5, Kd: 0,
			OutMin: 0, OutMax: 100,
			Setpoint: -20,
			CutoffHz: 0.2, RateHz: rate,
			Reverse: true,
		})
	}
}

// reboilPIDFactory builds the Depropanizer composition controller:
// reverse-acting PID holding the bottoms propane fraction at its design
// value by modulating reboil duty.
func reboilPIDFactory(cfg GasPlantConfig) func() (TaskLogic, error) {
	rate := 1.0 / cfg.ControlPeriod.Seconds()
	return func() (TaskLogic, error) {
		return NewPIDLogic(PIDParams{
			Kp: 3000, Ki: 120, Kd: 0,
			OutMin: 0, OutMax: 100,
			Setpoint: 0.024, // 0.30 feed C3 x 0.08 design separation
			CutoffHz: 0.05, RateHz: rate,
			Reverse: true,
		})
	}
}

// ltsPIDFactory builds the Fig. 6 controller: reverse-acting filtered
// PID on the LTS level driving the liquid valve.
func ltsPIDFactory(cfg GasPlantConfig) func() (TaskLogic, error) {
	rate := 1.0 / cfg.ControlPeriod.Seconds()
	return func() (TaskLogic, error) {
		return NewPIDLogic(PIDParams{
			Kp: 1.2, Ki: 0.08, Kd: 0.2,
			OutMin: 0, OutMax: 100,
			Setpoint: cfg.Setpoint,
			CutoffHz: 0.2, RateHz: rate,
			Reverse: true,
		})
	}
}

// LTSCapsuleSource is the Fig. 6 control law expressed in EVM assembler:
// a reverse-acting proportional controller on the LTS level,
// out = clamp(Kp * (level - setpoint), 0, 100).
const LTSCapsuleSource = `
	IN 0        ; LTS level (Q16.16)
	PUSHQ 50.0  ; setpoint
	SUB         ; level - sp (reverse acting)
	PUSHQ 1.5   ; Kp
	MULQ
	PUSH 0
	MAX
	PUSHQ 100.0
	MIN
	OUT 0
	HALT`

// ltsVMFactory builds the byte-code variant of the LTS controller.
func ltsVMFactory() (func() (TaskLogic, error), error) {
	code, err := vm.Assemble(LTSCapsuleSource)
	if err != nil {
		return nil, err
	}
	capsule := vm.Capsule{TaskID: LTSTaskID, Version: 1, Code: code}
	return func() (TaskLogic, error) {
		return core.NewVMLogic(capsule, 0)
	}, nil
}

// NewGasPlant assembles the scenario: gas plant + ModBus plant server +
// gateway + a Virtual Component with primary Ctrl-A and backup Ctrl-B.
func NewGasPlant(cfg GasPlantConfig) (*GasPlant, error) {
	if cfg.ControlPeriod <= 0 {
		return nil, fmt.Errorf("evm: control period %v", cfg.ControlPeriod)
	}
	ids := []NodeID{GasGatewayID, GasCtrlAID, GasCtrlBID, GasHeadID, GasSensorID, GasActID}
	// Three slots per node: after a fail-over one controller may hold two
	// active tasks (two actuations + one health bundle per cycle).
	cell, err := NewCell(CellConfig{Seed: cfg.Seed, PerfectChannel: cfg.PER == 0, SlotsPerNode: 3}, ids)
	if err != nil {
		return nil, err
	}
	if cfg.PER > 0 {
		cell.Medium().ForcePER(cfg.PER)
	}

	factory := ltsPIDFactory(cfg)
	if cfg.UseVM {
		vmFactory, err := ltsVMFactory()
		if err != nil {
			return nil, err
		}
		factory = vmFactory
	}
	spec := TaskSpec{
		ID:              LTSTaskID,
		SensorPort:      gateway.PortLTSLevel,
		ActuatorPort:    gateway.PortLTSValve,
		Period:          cfg.ControlPeriod,
		WCET:            5 * time.Millisecond,
		Candidates:      []NodeID{GasCtrlAID, GasCtrlBID},
		DeviationTol:    cfg.DeviationTol,
		DeviationWindow: cfg.DeviationWindow,
		SilenceWindow:   cfg.SilenceWindow,
		MakeLogic:       factory,
	}
	chillerSpec := TaskSpec{
		ID:              ChillerTaskID,
		SensorPort:      gateway.PortLTSTemp,
		ActuatorPort:    gateway.PortChillerDuty,
		Period:          cfg.ControlPeriod,
		WCET:            5 * time.Millisecond,
		Candidates:      []NodeID{GasCtrlBID, GasCtrlAID},
		DeviationTol:    cfg.DeviationTol,
		DeviationWindow: cfg.DeviationWindow,
		SilenceWindow:   cfg.SilenceWindow,
		MakeLogic:       chillerPIDFactory(cfg),
	}
	// The composition loop's output hunts with the tower-feed
	// oscillation, so a one-cycle observation skew (lost sensor
	// broadcast at a backup) produces large transient deviations; its
	// tolerance must cover that volatility.
	reboilTol := cfg.DeviationTol
	if reboilTol < 35 {
		reboilTol = 35
	}
	reboilSpec := TaskSpec{
		ID:              ReboilTaskID,
		SensorPort:      gateway.PortBottomsC3,
		ActuatorPort:    gateway.PortReboilDuty,
		Period:          cfg.ControlPeriod,
		WCET:            5 * time.Millisecond,
		Candidates:      []NodeID{GasSensorID, GasActID},
		DeviationTol:    reboilTol,
		DeviationWindow: cfg.DeviationWindow,
		SilenceWindow:   cfg.SilenceWindow,
		MakeLogic:       reboilPIDFactory(cfg),
	}
	vc := VCConfig{
		Name:         "gas-plant",
		Head:         GasHeadID,
		Gateway:      GasGatewayID,
		Tasks:        []TaskSpec{spec, chillerSpec, reboilSpec},
		DormantAfter: cfg.DormantAfter,
	}
	if err := cell.Deploy(vc); err != nil {
		return nil, err
	}

	p, err := plant.New(plant.DefaultConfig())
	if err != nil {
		return nil, err
	}
	ps := gateway.NewPlantServer(p, 1)
	gwCfg := gateway.DefaultConfig()
	gwCfg.Poll = cfg.ControlPeriod
	gwCfg.ActiveNode = map[string]radio.NodeID{
		LTSTaskID:     GasCtrlAID,
		ChillerTaskID: GasCtrlBID,
		ReboilTaskID:  GasSensorID,
	}
	gw, err := gateway.New(cell.Engine(), cell.Network().Link(GasGatewayID), ps, gwCfg)
	if err != nil {
		return nil, err
	}
	s := &GasPlant{Cell: cell, Plant: p, GW: gw, VC: vc, cfg: cfg, rec: trace.NewRecorder()}
	// Publish accepted actuations on the cell's event bus; the latency
	// series (experiment E5) is itself a bus subscriber now.
	gw.SetActuateSink(func(src radio.NodeID, task string, port uint8, value float64) {
		cell.bus.publish(ActuationEvent{At: cell.Now(), Node: src, Task: task, Port: port, Value: value})
	})
	cell.Events().Subscribe(func(ev Event) {
		if _, ok := ev.(ActuationEvent); ok {
			s.actLatencies = append(s.actLatencies, cell.Now()-gw.LastPollAt())
		}
	})

	// Plant dynamics integrate at a finer step than the control cycle.
	const plantDT = 50 * time.Millisecond
	cell.Engine().Every(plantDT, func() { p.Step(plantDT.Seconds()) })
	// Record the Fig. 6(b) series once per second of plant time.
	cell.Engine().Every(time.Second, s.record)
	gw.Start()
	return s, nil
}

func (s *GasPlant) record() {
	now := s.Cell.Now()
	f := s.Plant.Flows()
	s.rec.Series("lts_level_pct").Add(now, s.Plant.LTSLevelPct())
	s.rec.Series("sepliq_kmolh").Add(now, f.SepLiq)
	s.rec.Series("ltsliq_kmolh").Add(now, f.LTSLiq)
	s.rec.Series("towerfeed_kmolh").Add(now, f.TowerFeed)
	s.rec.Series("valve_pct").Add(now, s.Plant.ValveOpenPct())
	s.rec.Series("lts_temp_c").Add(now, s.Plant.LTSTempC())
	s.rec.Series("chiller_duty_pct").Add(now, s.Plant.ChillerDutyPct())
	s.rec.Series("bottoms_c3_frac").Add(now, s.Plant.BottomsC3())
	s.rec.Series("reboil_duty_pct").Add(now, s.Plant.ReboilDutyPct())
	active := 0.0
	if id, ok := s.Cell.Node(GasHeadID).Head().ActiveNode(LTSTaskID); ok {
		active = float64(id)
	}
	s.rec.Series("active_node").Add(now, active)
}

// Recorder returns the Fig. 6(b) time series.
func (s *GasPlant) Recorder() *trace.Recorder { return s.rec }

// ActuationLatencies returns gateway-measured sensor-to-actuation
// latencies.
func (s *GasPlant) ActuationLatencies() []time.Duration {
	return append([]time.Duration(nil), s.actLatencies...)
}

// Run advances the scenario by d.
func (s *GasPlant) Run(d time.Duration) { s.Cell.Run(d) }

// PrimaryFaultPlan is the Fig. 6 byzantine failure as declarative data:
// at offset at, Ctrl-A starts emitting the wrong valve output (75%).
func PrimaryFaultPlan(at time.Duration) FaultPlan {
	return FaultPlan{
		Name: "primary-compute",
		Steps: []FaultStep{{
			At:           at,
			ComputeFault: &ComputeFault{Node: GasCtrlAID, Task: LTSTaskID, Output: 75},
		}},
	}
}

// PrimaryCrashPlan crashes Ctrl-A's radio at offset at (silent fault).
func PrimaryCrashPlan(at time.Duration) FaultPlan {
	return FaultPlan{
		Name:  "primary-crash",
		Steps: []FaultStep{{At: at, CrashNode: GasCtrlAID}},
	}
}

// InjectPrimaryFault makes Ctrl-A emit the Fig. 6 wrong output (75%).
func (s *GasPlant) InjectPrimaryFault() {
	_ = s.Cell.ApplyFaultPlan(PrimaryFaultPlan(0))
}

// ClearPrimaryFault removes the injected fault.
func (s *GasPlant) ClearPrimaryFault() {
	_ = s.Cell.ApplyFaultPlan(FaultPlan{
		Name:  "primary-clear",
		Steps: []FaultStep{{ClearCompute: &TaskRef{Node: GasCtrlAID, Task: LTSTaskID}}},
	})
}

// CrashPrimary fails Ctrl-A's radio (silent crash).
func (s *GasPlant) CrashPrimary() {
	_ = s.Cell.ApplyFaultPlan(PrimaryCrashPlan(0))
}

// ActiveController returns the current master for the LTS task.
func (s *GasPlant) ActiveController() NodeID {
	id, _ := s.Cell.Node(GasHeadID).Head().ActiveNode(LTSTaskID)
	return id
}

// Fig6Result summarizes one run of the Fig. 6(b) experiment.
type Fig6Result struct {
	FaultAt    time.Duration
	FailoverAt time.Duration
	// LevelBefore / LevelMin / LevelEnd trace the drop and recovery.
	LevelBefore float64
	LevelMin    float64
	LevelEnd    float64
	// FlowPeak is the TowerFeed spike during the fault.
	FlowNominal float64
	FlowPeak    float64
}

// RunFig6 executes the full Fig. 6(b) timeline: steady state, primary
// fault at faultAt, detection and fail-over by the EVM, recovery until
// horizon. It returns the shape summary and leaves the series in
// Recorder().
func (s *GasPlant) RunFig6(faultAt, horizon time.Duration) (Fig6Result, error) {
	if faultAt >= horizon {
		return Fig6Result{}, fmt.Errorf("evm: fault at %v after horizon %v", faultAt, horizon)
	}
	res := Fig6Result{FaultAt: faultAt}
	sub := s.Cell.Events().Subscribe(func(ev Event) {
		if _, ok := ev.(FailoverEvent); ok && res.FailoverAt == 0 {
			res.FailoverAt = s.Cell.Now()
		}
	})
	defer sub.Cancel()
	s.Run(faultAt)
	res.LevelBefore = s.Plant.LTSLevelPct()
	res.FlowNominal = s.Plant.Flows().TowerFeed
	s.InjectPrimaryFault()

	res.LevelMin = res.LevelBefore
	res.FlowPeak = res.FlowNominal
	probe := s.Cell.Engine().Every(time.Second, func() {
		if l := s.Plant.LTSLevelPct(); l < res.LevelMin {
			res.LevelMin = l
		}
		if f := s.Plant.Flows().TowerFeed; f > res.FlowPeak {
			res.FlowPeak = f
		}
	})
	s.Run(horizon - faultAt)
	probe.Stop()
	res.LevelEnd = s.Plant.LTSLevelPct()
	return res, nil
}
