package evm_test

import (
	"fmt"
	"time"

	"evm"
)

// Example deploys a minimal Virtual Component, injects a compute fault on
// the primary and lets the EVM fail the task over to the backup.
func Example() {
	cell, err := evm.NewCell(evm.CellConfig{Seed: 7, PerfectChannel: true},
		[]evm.NodeID{1, 2, 3, 4})
	if err != nil {
		fmt.Println(err)
		return
	}
	vc := evm.VCConfig{
		Name: "demo", Head: 4, Gateway: 1,
		Tasks: []evm.TaskSpec{{
			ID: "loop", SensorPort: 0, ActuatorPort: 1,
			Period: 250 * time.Millisecond, WCET: 5 * time.Millisecond,
			Candidates:   []evm.NodeID{2, 3},
			DeviationTol: 5, DeviationWindow: 4, SilenceWindow: 8,
			MakeLogic: func() (evm.TaskLogic, error) {
				return evm.NewPIDLogic(evm.PIDParams{
					Kp: 2, Ki: 0.5, OutMin: 0, OutMax: 100,
					Setpoint: 50, CutoffHz: 0.4, RateHz: 4,
				})
			},
		}},
	}
	if err := cell.Deploy(vc); err != nil {
		fmt.Println(err)
		return
	}
	feed, err := cell.StartSensorFeed(1, 250*time.Millisecond, func() []evm.SensorReading {
		return []evm.SensorReading{{Port: 0, Value: 50}}
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer feed.Stop()

	cell.Run(5 * time.Second)
	fmt.Println("before fault:", cell.Node(2).Role("loop"), "/", cell.Node(3).Role("loop"))
	cell.Node(2).InjectComputeFault("loop", 75)
	cell.Run(20 * time.Second)
	fmt.Println("after fault: ", cell.Node(2).Role("loop"), "/", cell.Node(3).Role("loop"))
	// Output:
	// before fault: active / backup
	// after fault:  indicator / active
}

// ExampleNewGasPlant reruns the paper's Fig. 6(b) fail-over case study at
// a compressed timeline.
func ExampleNewGasPlant() {
	cfg := evm.DefaultGasPlantConfig()
	cfg.DeviationWindow = 40 // 10 s deliberation for a quick demo
	s, err := evm.NewGasPlant(cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := s.RunFig6(30*time.Second, 120*time.Second)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("failover happened:", res.FailoverAt > res.FaultAt)
	fmt.Println("new master is Ctrl-B:", s.ActiveController() == evm.GasCtrlBID)
	// Output:
	// failover happened: true
	// new master is Ctrl-B: true
}
