module evm

go 1.24
